//! Sharded LRU cache for serialized results.
//!
//! The serving workload is exactly the one a result cache wins on:
//! analytical explorations are pure functions of the request body, cheap
//! enough to recompute but heavily repeated — the same `explore
//! me-small` arrives from every client. Keys are the canonical FNV-1a
//! request hashes ([`crate::protocol::cache_key`]); values are the
//! serialized `result` documents, stored behind `Arc<str>` so a hit
//! hands bytes to the response writer without copying.
//!
//! The map is split into [`ResultCache::SHARDS`] independently locked
//! shards (keyed by the low bits of the hash) so concurrent worker
//! threads do not serialize on one mutex. Each shard runs its own LRU:
//! entries carry a logical tick refreshed on hit, and when a shard is
//! full the oldest tick is evicted. A hit records `serve_cache_hits`
//! and drops a `cache_hit` event (keyed by the request's trace id) into
//! the flight recorder; a miss records *nothing* here — the serving
//! loop decides whether a missing key becomes a cold compute
//! (`serve_cache_misses`) or coalesces onto an identical in-flight one
//! (`serve_coalesced`), so every cacheable request lands in exactly one
//! of the three buckets and the hit ratio stays well-defined.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use datareuse_obs::{add, flight_record, Counter, FlightKind, TraceCtx};

struct Entry {
    tick: u64,
    value: Arc<str>,
}

#[derive(Default)]
struct Shard {
    tick: u64,
    entries: HashMap<u64, Entry>,
}

/// A sharded LRU map from canonical request hashes to serialized
/// results. Capacity 0 disables caching entirely (every lookup misses
/// without recording cache metrics).
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
}

impl ResultCache {
    /// Number of independently locked shards. A power of two so the
    /// shard index is a mask of the hash's low bits.
    pub const SHARDS: usize = 8;

    /// Creates a cache holding roughly `total_entries` results
    /// (rounded up to a multiple of [`ResultCache::SHARDS`]); 0 disables
    /// the cache.
    pub fn new(total_entries: usize) -> Self {
        let per_shard = if total_entries == 0 {
            0
        } else {
            total_entries.div_ceil(Self::SHARDS)
        };
        Self {
            shards: (0..Self::SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) & (Self::SHARDS - 1)]
    }

    /// Looks up `key`, refreshing its LRU position on a hit. A hit
    /// records `serve_cache_hits`; a miss records nothing (the caller
    /// classifies it as cold or coalesced — see the module docs).
    pub fn get(&self, key: u64) -> Option<Arc<str>> {
        if self.per_shard == 0 {
            return None;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        // The flight recorder correlates the probe with the request via
        // the trace id installed by the serving loop (0 when the probe
        // happens outside a request, e.g. in unit tests).
        let trace_id = TraceCtx::current().map_or(0, |c| c.trace_id);
        match shard.entries.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                let value = Arc::clone(&entry.value);
                drop(shard);
                add(Counter::ServeCacheHits, 1);
                flight_record(FlightKind::CacheHit, trace_id, key);
                Some(value)
            }
            None => None,
        }
    }

    /// Inserts `value` under `key`, evicting the shard's least recently
    /// used entry when full. Records `serve_cache_evictions`.
    pub fn insert(&self, key: u64, value: Arc<str>) {
        if self.per_shard == 0 {
            return;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.entries.contains_key(&key) && shard.entries.len() >= self.per_shard {
            // O(shard size) scan; shards are small (total/8) and the
            // insert path already paid for an exploration, so a linear
            // eviction scan is noise.
            if let Some(&oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k)
            {
                shard.entries.remove(&oldest);
                add(Counter::ServeCacheEvictions, 1);
            }
        }
        shard.entries.insert(key, Entry { tick, value });
    }

    /// Number of cached results across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Whether the cache currently holds nothing (also true when
    /// disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether caching is active (capacity above zero).
    pub fn enabled(&self) -> bool {
        self.per_shard > 0
    }

    /// Every `(key, value)` currently cached, in unspecified order —
    /// the snapshot writer sorts before serializing.
    pub fn entries(&self) -> Vec<(u64, Arc<str>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            out.extend(
                shard
                    .entries
                    .iter()
                    .map(|(&k, e)| (k, Arc::clone(&e.value))),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ResultCache::new(64);
        assert!(cache.get(7).is_none());
        cache.insert(7, arc("seven"));
        assert_eq!(cache.get(7).as_deref(), Some("seven"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // per_shard = 1: keys mapping to the same shard displace each
        // other, and the refreshed entry survives.
        let cache = ResultCache::new(ResultCache::SHARDS);
        let shards = ResultCache::SHARDS as u64;
        let (a, b) = (shards, 2 * shards); // same shard (low bits 0)
        cache.insert(a, arc("a"));
        cache.insert(b, arc("b"));
        assert!(cache.get(a).is_none(), "a was evicted");
        assert_eq!(cache.get(b).as_deref(), Some("b"));
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        // Two entries per shard: touch `a`, insert two more, expect the
        // untouched middle entry to go first.
        let cache = ResultCache::new(2 * ResultCache::SHARDS);
        let s = ResultCache::SHARDS as u64;
        cache.insert(s, arc("a"));
        cache.insert(2 * s, arc("b"));
        assert_eq!(cache.get(s).as_deref(), Some("a")); // refresh a
        cache.insert(3 * s, arc("c")); // evicts b, the LRU
        assert_eq!(cache.get(s).as_deref(), Some("a"));
        assert!(cache.get(2 * s).is_none());
        assert_eq!(cache.get(3 * s).as_deref(), Some("c"));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = ResultCache::new(0);
        cache.insert(1, arc("x"));
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict_neighbors() {
        let cache = ResultCache::new(2 * ResultCache::SHARDS);
        let s = ResultCache::SHARDS as u64;
        cache.insert(s, arc("a"));
        cache.insert(2 * s, arc("b"));
        cache.insert(s, arc("a2")); // overwrite, shard stays at 2 entries
        assert_eq!(cache.get(s).as_deref(), Some("a2"));
        assert_eq!(cache.get(2 * s).as_deref(), Some("b"));
    }
}
