//! The TCP serving loop: accept, parse, dispatch, respond.
//!
//! Thread model: the acceptor thread hands each connection to its own
//! connection thread (cheap, I/O-bound), which parses request lines and
//! routes compute onto the shared bounded [`WorkerPool`]. The connection
//! thread then blocks on an [`mpsc`] channel with `recv_timeout` set to
//! the request deadline — if the worker does not finish in time the
//! client gets a structured `timeout` error while the worker's eventual
//! result still populates the cache for the next caller.
//!
//! Shutdown is cooperative: a `shutdown` request flips the stop flag,
//! the acceptor (which polls in nonblocking mode) closes the listening
//! socket, the pool drains everything already accepted, and
//! [`Server::run`] returns once in-flight responses are written. Idle
//! connections use a short read timeout so they notice the stop flag
//! instead of pinning the process open.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use datareuse_obs::{
    add, chrome_trace_json, flight_record, flight_tail_json, gauge_value, hist_snapshot,
    prometheus_text, record_hist, record_span_at, scrape_series, series_json, span,
    take_trace_events, trace_now_ns, trace_span_with, Counter, FlightKind, Gauge, Hist, Json,
    TraceCtx, FLIGHT_ERROR_TAIL,
};

use crate::cache::ResultCache;
use crate::ops;
use crate::pool::WorkerPool;
use crate::protocol::{
    err_envelope, err_envelope_with_flight, ok_envelope, Op, Request, E_BAD_REQUEST, E_INTERNAL,
    E_OVERLOADED, E_SHUTTING_DOWN, E_TIMEOUT,
};

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to listen on; port 0 picks an ephemeral port (the bound
    /// address is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads for compute. 0 = one per available core.
    pub threads: usize,
    /// Bound on jobs waiting for a worker before requests are refused
    /// with `overloaded`.
    pub queue_depth: usize,
    /// Total result-cache entries across all shards; 0 disables caching.
    pub cache_entries: usize,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline: Duration,
    /// Interval between metrics-series scrapes (the background thread
    /// that feeds `stats {"series":true}`). Zero disables the scraper.
    pub scrape_interval: Duration,
    /// SLO thresholds evaluated by the `health` op.
    pub slo: SloThresholds,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue_depth: 64,
            cache_entries: 256,
            default_deadline: Duration::from_secs(30),
            scrape_interval: Duration::from_secs(1),
            slo: SloThresholds::default(),
        }
    }
}

/// Service-level objectives the `health` op checks. Each check grades
/// `ok`/`degraded`/`failing`; the overall status is the worst of them.
#[derive(Debug, Clone)]
pub struct SloThresholds {
    /// Request latency p99 (cache hits and misses merged) must stay at
    /// or under this for `ok`; up to 4x is `degraded`, beyond is
    /// `failing`. An empty histogram passes vacuously.
    pub p99_latency: Duration,
    /// Minimum cache hit ratio for `ok`; half of it is the `degraded`
    /// floor. Ignored until [`SloThresholds::MIN_HIT_PROBES`] cache
    /// probes have happened, so a cold server is not penalized.
    pub min_hit_ratio: f64,
    /// Queue saturation (`queued / queue_depth`) allowed for `ok`;
    /// anything short of full is `degraded`, a full queue is `failing`.
    pub max_queue_saturation: f64,
}

impl SloThresholds {
    /// Cache probes required before the hit-ratio check counts.
    pub const MIN_HIT_PROBES: u64 = 20;
}

impl Default for SloThresholds {
    fn default() -> Self {
        Self {
            p99_latency: Duration::from_millis(250),
            min_hit_ratio: 0.0,
            max_queue_saturation: 0.75,
        }
    }
}

struct Shared {
    pool: WorkerPool,
    cache: ResultCache,
    stopping: AtomicBool,
    in_flight: AtomicUsize,
    default_deadline: Duration,
    queue_depth: usize,
    slo: SloThresholds,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    scrape_interval: Duration,
}

impl Server {
    /// Binds the listener and spins up the worker pool.
    ///
    /// # Errors
    ///
    /// When the address cannot be parsed or bound.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind `{}`: {e}", config.addr))?;
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.threads
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                pool: WorkerPool::new(threads, config.queue_depth.max(1)),
                cache: ResultCache::new(config.cache_entries),
                stopping: AtomicBool::new(false),
                in_flight: AtomicUsize::new(0),
                default_deadline: config.default_deadline,
                queue_depth: config.queue_depth.max(1),
                slo: config.slo.clone(),
            }),
            scrape_interval: config.scrape_interval,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// When the OS cannot report the socket address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Serves until a `shutdown` request arrives, then drains in-flight
    /// work and returns.
    ///
    /// # Errors
    ///
    /// When the listener cannot be switched to nonblocking polling.
    pub fn run(self) -> Result<(), String> {
        // Nonblocking accept + short sleep so the acceptor notices the
        // stop flag promptly without platform-specific socket tricks.
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot poll listener: {e}"))?;
        let scraper = (self.scrape_interval > Duration::ZERO).then(|| {
            let shared = Arc::clone(&self.shared);
            let interval = self.scrape_interval;
            std::thread::spawn(move || {
                // Scrape immediately so even a short-lived server leaves
                // at least one point, then on the interval. Sleeping in
                // small slices keeps shutdown prompt without condvars.
                scrape_series();
                while !shared.stopping.load(Ordering::Acquire) {
                    let start = Instant::now();
                    while start.elapsed() < interval {
                        if shared.stopping.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(25).min(interval));
                    }
                    scrape_series();
                }
            })
        });
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.stopping.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    connections.push(std::thread::spawn(move || serve_connection(stream, &shared)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
            connections.retain(|c| !c.is_finished());
        }
        drop(self.listener);
        // Drain: complete every accepted job, then wait for connection
        // threads still writing responses (their read timeout bounds how
        // long an idle one takes to notice the flag).
        self.shared.pool.drain();
        let grace = Instant::now();
        while self.shared.in_flight.load(Ordering::Acquire) > 0
            && grace.elapsed() < Duration::from_secs(10)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        for c in connections {
            let _ = c.join();
        }
        if let Some(scraper) = scraper {
            let _ = scraper.join();
        }
        Ok(())
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _serve = span("serve");
    // One request = one response line; Nagle coalescing only adds a
    // delayed-ACK round trip (~40ms) to every exchange.
    let _ = stream.set_nodelay(true);
    // Periodic read timeouts let an idle connection observe shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {
                if !line.trim().is_empty() {
                    shared.in_flight.fetch_add(1, Ordering::AcqRel);
                    let response = handle_line(&line, shared);
                    let done = writer
                        .write_all(response.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush());
                    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                    if done.is_err() {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A timeout mid-line leaves the partial bytes in `line`;
                // the next read continues accumulating.
                if shared.stopping.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Flight-recorder detail payload for a `request_start` event: the op's
/// position in the wire grammar (1-based), documented in
/// docs/ARCHITECTURE.md. The op *name* travels in the trace span; the
/// flight slot only has a u64.
fn op_ordinal(op: &Op) -> u64 {
    match op {
        Op::Explore(_) => 1,
        Op::Pareto(_) => 2,
        Op::Report { .. } => 3,
        Op::Codegen(_) => 4,
        Op::Stats { .. } => 5,
        Op::Trace => 6,
        Op::Prom => 7,
        Op::Ping => 8,
        Op::Shutdown => 9,
        Op::Health => 10,
    }
}

/// Builds the `stats` result: the metrics-v2 snapshot plus a `derived`
/// section (hit ratio, queue depths, requests served) and, on request,
/// the full flight-recorder tail and the scraped metrics series.
fn stats_result(shared: &Shared, flight: bool, series: bool) -> String {
    let snap = datareuse_obs::snapshot();
    let hits = snap.counter(Counter::ServeCacheHits);
    let misses = snap.counter(Counter::ServeCacheMisses);
    let probes = hits + misses;
    let ratio = if probes > 0 {
        hits as f64 / probes as f64
    } else {
        0.0
    };
    let derived = Json::obj([
        ("requests_served", Json::UInt(snap.counter(Counter::ServeRequests))),
        ("cache_hit_ratio", Json::Num(ratio)),
        ("queue_depth", Json::UInt(shared.pool.queued() as u64)),
        (
            "queue_depth_max",
            Json::UInt(gauge_value(Gauge::ServeQueueDepthMax)),
        ),
    ]);
    let Json::Obj(mut entries) = snap.to_json() else {
        unreachable!("snapshot JSON is always an object");
    };
    entries.push(("derived".to_string(), derived));
    if flight {
        entries.push(("flight".to_string(), flight_tail_json(usize::MAX)));
    }
    if series {
        entries.push(("series".to_string(), series_json()));
    }
    Json::Obj(entries).to_string()
}

/// One health check's grade. Ordered so `max` picks the worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Grade {
    Ok,
    Degraded,
    Failing,
}

impl Grade {
    fn name(self) -> &'static str {
        match self {
            Grade::Ok => "ok",
            Grade::Degraded => "degraded",
            Grade::Failing => "failing",
        }
    }
}

/// Builds the `health` result: each SLO check graded individually plus
/// the worst grade overall. The thresholds come from [`ServerConfig`];
/// `datareuse query` maps the overall status onto exit codes so probes
/// can alert without parsing JSON.
fn health_result(shared: &Shared) -> String {
    let slo = &shared.slo;
    // Latency: p99 over all requests, cache hits and misses merged —
    // the client cares about the answer's latency, not where it came
    // from. An empty histogram (no requests yet) passes vacuously.
    let lat = hist_snapshot(Hist::ServeLatencyCold).merge(&hist_snapshot(Hist::ServeLatencyCacheHit));
    let p99_ms = lat.p99() as f64 / 1e6;
    let slo_ms = slo.p99_latency.as_secs_f64() * 1e3;
    let latency = if lat.count == 0 || p99_ms <= slo_ms {
        Grade::Ok
    } else if p99_ms <= 4.0 * slo_ms {
        Grade::Degraded
    } else {
        Grade::Failing
    };
    // Hit ratio: only meaningful once enough probes have happened; a
    // server that has barely been asked anything is not unhealthy.
    let snap = datareuse_obs::snapshot();
    let hits = snap.counter(Counter::ServeCacheHits);
    let probes = hits + snap.counter(Counter::ServeCacheMisses);
    let ratio = if probes > 0 {
        hits as f64 / probes as f64
    } else {
        0.0
    };
    let hit_ratio = if probes < SloThresholds::MIN_HIT_PROBES || ratio >= slo.min_hit_ratio {
        Grade::Ok
    } else if ratio >= slo.min_hit_ratio / 2.0 {
        Grade::Degraded
    } else {
        Grade::Failing
    };
    // Queue: a full queue is already refusing work (`overloaded`), so
    // it grades `failing`; past the SLO fraction but not full is the
    // early warning.
    let depth = shared.pool.queued();
    let saturation = depth as f64 / shared.queue_depth as f64;
    let queue = if saturation <= slo.max_queue_saturation {
        Grade::Ok
    } else if saturation < 1.0 {
        Grade::Degraded
    } else {
        Grade::Failing
    };
    let overall = latency.max(hit_ratio).max(queue);
    let check = |grade: Grade, detail: Vec<(&str, Json)>| {
        let mut entries = vec![("status", Json::str(grade.name()))];
        entries.extend(detail);
        Json::obj(entries)
    };
    Json::obj([
        ("status", Json::str(overall.name())),
        (
            "checks",
            Json::obj([
                (
                    "latency",
                    check(
                        latency,
                        vec![
                            ("p99_ms", Json::Num(p99_ms)),
                            ("slo_ms", Json::Num(slo_ms)),
                            ("samples", Json::UInt(lat.count)),
                        ],
                    ),
                ),
                (
                    "hit_ratio",
                    check(
                        hit_ratio,
                        vec![
                            ("ratio", Json::Num(ratio)),
                            ("slo", Json::Num(slo.min_hit_ratio)),
                            ("probes", Json::UInt(probes)),
                        ],
                    ),
                ),
                (
                    "queue",
                    check(
                        queue,
                        vec![
                            ("depth", Json::UInt(depth as u64)),
                            ("capacity", Json::UInt(shared.queue_depth as u64)),
                            ("saturation", Json::Num(saturation)),
                            ("slo", Json::Num(slo.max_queue_saturation)),
                        ],
                    ),
                ),
            ]),
        ),
    ])
    .to_string()
}

/// Processes one request line into one response line.
fn handle_line(line: &str, shared: &Arc<Shared>) -> String {
    add(Counter::ServeRequests, 1);
    let started = Instant::now();
    // Every request gets a trace id even when tracing is off: the flight
    // recorder uses it to correlate events, and it is free to mint.
    let root = TraceCtx::root();
    let _attach = root.attach();
    let (response, cache_hit) = handle_request(line, shared, root);
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    record_hist(
        if cache_hit {
            Hist::ServeLatencyCacheHit
        } else {
            Hist::ServeLatencyCold
        },
        elapsed_ns,
    );
    flight_record(FlightKind::RequestEnd, root.trace_id, elapsed_ns / 1_000);
    response
}

/// The request body of [`handle_line`]; returns the response line and
/// whether it was served from the result cache (for the latency split).
fn handle_request(line: &str, shared: &Arc<Shared>, root: TraceCtx) -> (String, bool) {
    let request = match Request::parse_line(line) {
        Ok(r) => r,
        Err(msg) => {
            add(Counter::ServeErrors, 1);
            // Echo the id back even for bodies that failed validation —
            // the document may still be well-formed JSON with a bad op.
            let id = Json::parse(line).ok().and_then(|doc| doc.get("id").cloned());
            return (err_envelope(id.as_ref(), E_BAD_REQUEST, &msg), false);
        }
    };
    let id = request.id.clone();
    // The request span nests every child (cache probe, queue wait,
    // execute) under one trace; its ctx is what crosses to the worker.
    let request_span = trace_span_with("request", request.op.name());
    let ctx = request_span.ctx().unwrap_or(root);
    flight_record(FlightKind::RequestStart, ctx.trace_id, op_ordinal(&request.op));
    match &request.op {
        Op::Ping => return (ok_envelope(id.as_ref(), false, r#""pong""#), false),
        Op::Stats { flight, series } => {
            let result = stats_result(shared, *flight, *series);
            return (ok_envelope(id.as_ref(), false, &result), false);
        }
        Op::Health => {
            let result = health_result(shared);
            return (ok_envelope(id.as_ref(), false, &result), false);
        }
        Op::Trace => {
            let result = chrome_trace_json(&take_trace_events()).to_string();
            return (ok_envelope(id.as_ref(), false, &result), false);
        }
        Op::Prom => {
            let result = Json::str(prometheus_text(&datareuse_obs::snapshot())).to_string();
            return (ok_envelope(id.as_ref(), false, &result), false);
        }
        Op::Shutdown => {
            shared.stopping.store(true, Ordering::Release);
            return (ok_envelope(id.as_ref(), false, r#""draining""#), false);
        }
        _ => {}
    }
    // Cache probe before paying for queue space or compute.
    if let Some(key) = request.cache_key {
        let _cache = span("cache");
        if let Some(hit) = shared.cache.get(key) {
            return (ok_envelope(id.as_ref(), true, &hit), true);
        }
    }
    let _request = span("request");
    if shared.stopping.load(Ordering::Acquire) {
        add(Counter::ServeErrors, 1);
        return (
            err_envelope(id.as_ref(), E_SHUTTING_DOWN, "server is draining"),
            false,
        );
    }
    let deadline = request
        .deadline_ms
        .map_or(shared.default_deadline, Duration::from_millis);
    let deadline_ms = deadline.as_millis() as u64;
    let expires = Instant::now() + deadline;
    let (tx, rx) = mpsc::channel::<Result<Arc<str>, ops::OpError>>();
    let job_shared = Arc::clone(shared);
    let op = request.op.clone();
    let key = request.cache_key;
    let submitted_at = Instant::now();
    let submitted_ts = trace_now_ns();
    let submitted = shared.pool.try_submit(Box::new(move || {
        // Re-install the request's trace context on the worker thread so
        // spans opened here nest under the request.
        let _attach = ctx.attach();
        let wait_ns = submitted_at.elapsed().as_nanos() as u64;
        record_hist(Hist::ServeQueueWait, wait_ns);
        // The wait starts on the connection thread and ends here, so it
        // is recorded directly rather than via a guard.
        record_span_at("queue_wait", ctx, submitted_ts, wait_ns);
        // A worker picking up an already-expired job skips the compute:
        // the waiter is gone and the result would be wasted work. Report
        // the expiry explicitly — dropping the channel instead would
        // race the waiter's own timeout and read as an internal error.
        if Instant::now() >= expires {
            flight_record(FlightKind::DeadlineExpiry, ctx.trace_id, deadline_ms);
            let _ = tx.send(Err(ops::OpError {
                code: E_TIMEOUT,
                message: "deadline expired before execution".to_string(),
            }));
            return;
        }
        let _exec = trace_span_with("execute", op.name());
        let outcome = ops::execute(&op).map(|result| {
            let raw: Arc<str> = Arc::from(result.to_string());
            if let Some(key) = key {
                job_shared.cache.insert(key, Arc::clone(&raw));
            }
            raw
        });
        let _ = tx.send(outcome);
    }));
    if submitted.is_err() {
        add(Counter::ServeOverloaded, 1);
        let queued = shared.pool.queued();
        flight_record(FlightKind::QueueReject, ctx.trace_id, queued as u64);
        let (code, msg) = if shared.stopping.load(Ordering::Acquire) {
            (E_SHUTTING_DOWN, "server is draining".to_string())
        } else {
            (
                E_OVERLOADED,
                format!("queue full ({queued} waiting); retry later"),
            )
        };
        let flight = (code == E_OVERLOADED).then(|| flight_tail_json(FLIGHT_ERROR_TAIL));
        return (
            err_envelope_with_flight(id.as_ref(), code, &msg, flight),
            false,
        );
    }
    let response = match rx.recv_timeout(deadline) {
        Ok(Ok(raw)) => ok_envelope(id.as_ref(), false, &raw),
        Ok(Err(e)) => {
            add(
                if e.code == E_TIMEOUT {
                    Counter::ServeTimeouts
                } else {
                    Counter::ServeErrors
                },
                1,
            );
            let flight = (e.code == E_TIMEOUT).then(|| flight_tail_json(FLIGHT_ERROR_TAIL));
            err_envelope_with_flight(id.as_ref(), e.code, &e.message, flight)
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            add(Counter::ServeTimeouts, 1);
            flight_record(FlightKind::DeadlineExpiry, ctx.trace_id, deadline_ms);
            err_envelope_with_flight(
                id.as_ref(),
                E_TIMEOUT,
                &format!("deadline of {deadline_ms}ms expired"),
                Some(flight_tail_json(FLIGHT_ERROR_TAIL)),
            )
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            add(Counter::ServeErrors, 1);
            err_envelope(id.as_ref(), E_INTERNAL, "worker dropped the request")
        }
    };
    (response, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Write};

    fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(&config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn roundtrip(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut out = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            out.push(Json::parse(&response).unwrap());
        }
        out
    }

    #[test]
    fn ping_explore_and_shutdown_over_a_real_socket() {
        let (addr, handle) = start(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"ping","id":1}"#,
                r#"{"op":"explore","kernel":"fir","id":2}"#,
                r#"{"op":"explore","kernel":"fir","id":3}"#,
                r#"{"op":"bogus","id":4}"#,
                r#"{"op":"shutdown","id":5}"#,
            ],
        );
        assert_eq!(responses[0].get("result").and_then(Json::as_str), Some("pong"));
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(responses[1].get("cached").and_then(Json::as_bool), Some(false));
        assert!(responses[1].get("result").and_then(|r| r.get("array")).is_some());
        // Same request again: served from cache, identical result bytes.
        assert_eq!(responses[2].get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            responses[1].get("result").map(Json::to_string),
            responses[2].get("result").map(Json::to_string)
        );
        assert_eq!(responses[3].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            responses[3]
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(E_BAD_REQUEST)
        );
        assert_eq!(responses[3].get("id").and_then(Json::as_u64), Some(4));
        assert_eq!(responses[4].get("ok").and_then(Json::as_bool), Some(true));
        handle.join().unwrap();
    }

    #[test]
    fn stats_series_and_health_report_on_a_live_server() {
        let (addr, handle) = start(ServerConfig {
            threads: 1,
            scrape_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"ping","id":1}"#,
                r#"{"op":"stats","series":true,"id":2}"#,
                r#"{"op":"health","id":3}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        let series = responses[1]
            .get("result")
            .and_then(|r| r.get("series"))
            .expect("series section present when requested");
        assert_eq!(
            series.get("schema").and_then(Json::as_str),
            Some("datareuse-series-v1")
        );
        let points = series
            .get("points")
            .and_then(Json::as_array)
            .expect("points array");
        assert!(!points.is_empty(), "scraper left at least one point");
        // The health envelope grades every check; a freshly started
        // server under default SLOs is `ok` across the board.
        let health = responses[2].get("result").expect("health result");
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        let checks = health.get("checks").expect("checks section");
        for name in ["latency", "hit_ratio", "queue"] {
            let check = checks.get(name).unwrap_or_else(|| panic!("{name} check"));
            assert!(check.get("status").and_then(Json::as_str).is_some());
        }
        handle.join().unwrap();
    }

    #[test]
    fn an_unmeetable_latency_slo_grades_failing() {
        // Latency histograms only record while metrics are on (the CLI
        // turns them on for `serve`; unit tests must opt in).
        datareuse_obs::set_metrics_enabled(true);
        let (addr, handle) = start(ServerConfig {
            threads: 1,
            slo: SloThresholds {
                p99_latency: Duration::ZERO,
                ..SloThresholds::default()
            },
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"ping","id":1}"#,
                r#"{"op":"health","id":2}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        let health = responses[1].get("result").expect("health result");
        // The ping above put at least one sample in the latency
        // histogram, and any positive p99 busts a zero-latency SLO.
        assert_eq!(health.get("status").and_then(Json::as_str), Some("failing"));
        assert_eq!(
            health
                .get("checks")
                .and_then(|c| c.get("latency"))
                .and_then(|l| l.get("status"))
                .and_then(Json::as_str),
            Some("failing")
        );
        handle.join().unwrap();
    }

    #[test]
    fn a_zero_deadline_times_out_with_a_structured_error() {
        let (addr, handle) = start(ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"report","kernel":"susan","deadline_ms":0,"id":"t"}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            responses[0]
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(E_TIMEOUT)
        );
        assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("t"));
        handle.join().unwrap();
    }
}
