//! The serving core: a readiness-based event loop over nonblocking
//! sockets.
//!
//! Earlier revisions ran one thread per connection; past a few hundred
//! clients the stacks and context switches dominated and the acceptor
//! became the bottleneck. The current model is the classic staged
//! design:
//!
//! - **Event loops** (one per core by default, each a thread sharing the
//!   listener) own the sockets. Each loop `poll(2)`s its connections
//!   ([`crate::reactor`]), reads complete NDJSON lines, answers
//!   control/introspection ops inline, and parks compute requests in
//!   per-connection response slots.
//! - **The worker pool** ([`WorkerPool`]) stays the bounded compute
//!   stage: event loops never run an exploration themselves, so a slow
//!   `report susan` cannot stall ten thousand idle connections.
//! - **Singleflight** ([`SingleFlight`]) sits between them: concurrent
//!   identical requests (by canonical cache key) share one worker job.
//!   The first miss leads; the rest subscribe, are counted in
//!   `serve_coalesced`, and are marked `"coalesced":true` in their
//!   envelopes.
//!
//! Completions cross back from workers to loops through a mutexed queue
//! plus a [`reactor::WakePipe`] — a worker pushes the outcome and writes
//! one wake byte, the parked loop drains both. Responses to one
//! connection always flush in request order (per-connection slot queue),
//! so pipelined clients can match responses positionally as well as by
//! `id`.
//!
//! Deadlines are loop-owned: every compute slot carries its expiry, the
//! poll timeout is the nearest one, and an expired slot is answered with
//! a structured `timeout` while the worker's eventual result still
//! warms the cache. Shutdown is cooperative: `shutdown` flips the stop
//! flag and wakes every loop; loops stop reading, flush what they owe,
//! close drained connections, and exit; then the pool drains and — when
//! `--cache-snapshot` is configured — the cache is persisted
//! ([`crate::snapshot`]) for the next start.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use datareuse_obs::{
    add, chrome_trace_json, flight_record, flight_tail_json, gauge_add, gauge_sub, gauge_value,
    hist_snapshot, prometheus_text, record_hist, record_span_at, scrape_series, series_json, span,
    take_trace_events, trace_now_ns, trace_span_with, Counter, FlightKind, Gauge, Hist, Json,
    TraceCtx, FLIGHT_ERROR_TAIL,
};

use crate::cache::ResultCache;
use crate::ops::{self, OpError};
use crate::pool::WorkerPool;
use crate::protocol::{
    err_envelope_with_flight, ok_envelope_coalesced, Op, Request, E_BAD_REQUEST, E_OVERLOADED,
    E_SHUTTING_DOWN, E_TIMEOUT,
};
use crate::reactor::{self, PollFd, WakePipe, Waker, POLLIN, POLLOUT};
use crate::singleflight::{JoinRole, SingleFlight, Subscriber};
use crate::snapshot;

/// Most responses a connection may have outstanding before the loop
/// stops reading from it (pipelining bound; backpressure by readiness).
const MAX_PIPELINE: usize = 128;

/// Largest request line accepted before the connection is dropped as
/// misbehaving (a line this long is not a protocol request).
const MAX_LINE: usize = 1 << 20;

/// Poll tick when nothing sets a nearer deadline: idle loops still wake
/// occasionally to notice the stop flag from a sibling loop.
const IDLE_TICK: Duration = Duration::from_millis(250);

/// How long a stopping loop waits for owed responses before force-closing
/// the stragglers.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to listen on; port 0 picks an ephemeral port (the bound
    /// address is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads for compute. 0 = one per available core.
    pub threads: usize,
    /// Event-loop threads sharing the listener. 0 = one per available
    /// core, capped at 8 (loops are I/O-bound; more than that only adds
    /// poll herds).
    pub loops: usize,
    /// Bound on jobs waiting for a worker before requests are refused
    /// with `overloaded`.
    pub queue_depth: usize,
    /// Total result-cache entries across all shards; 0 disables caching.
    pub cache_entries: usize,
    /// Cache snapshot file: loaded (after version + checksum gating) at
    /// bind, written on graceful drain. `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline: Duration,
    /// Interval between metrics-series scrapes (the background thread
    /// that feeds `stats {"series":true}`). Zero disables the scraper.
    pub scrape_interval: Duration,
    /// SLO thresholds evaluated by the `health` op.
    pub slo: SloThresholds,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            loops: 0,
            queue_depth: 64,
            cache_entries: 256,
            snapshot_path: None,
            default_deadline: Duration::from_secs(30),
            scrape_interval: Duration::from_secs(1),
            slo: SloThresholds::default(),
        }
    }
}

/// Service-level objectives the `health` op checks. Each check grades
/// `ok`/`degraded`/`failing`; the overall status is the worst of them.
#[derive(Debug, Clone)]
pub struct SloThresholds {
    /// Request latency p99 (cache hits and misses merged) must stay at
    /// or under this for `ok`; up to 4x is `degraded`, beyond is
    /// `failing`. An empty histogram passes vacuously.
    pub p99_latency: Duration,
    /// Minimum cache hit ratio for `ok`; half of it is the `degraded`
    /// floor. Ignored until [`SloThresholds::MIN_HIT_PROBES`] cache
    /// probes have happened, so a cold server is not penalized.
    /// Coalesced followers count as cache-path traffic here — they cost
    /// no compute, so they must not read as misses.
    pub min_hit_ratio: f64,
    /// Queue saturation (`queued / queue_depth`) allowed for `ok`;
    /// anything short of full is `degraded`, a full queue is `failing`.
    pub max_queue_saturation: f64,
}

impl SloThresholds {
    /// Cache probes required before the hit-ratio check counts.
    pub const MIN_HIT_PROBES: u64 = 20;
}

impl Default for SloThresholds {
    fn default() -> Self {
        Self {
            p99_latency: Duration::from_millis(250),
            min_hit_ratio: 0.0,
            max_queue_saturation: 0.75,
        }
    }
}

/// The cache-path hit ratio: hits and coalesced followers over all
/// cacheable requests. Every cacheable request lands in exactly one of
/// the three buckets (hit, coalesced, cold miss), so the ratio is
/// well-defined; coalesced followers cost no compute and therefore
/// count toward the numerator — without that, a coalescing-heavy burst
/// would read as a miss storm and degrade `health` for doing its job.
fn hit_ratio(hits: u64, coalesced: u64, misses: u64) -> f64 {
    let served = hits + coalesced;
    let probes = served + misses;
    if probes == 0 {
        0.0
    } else {
        served as f64 / probes as f64
    }
}

struct Shared {
    pool: WorkerPool,
    cache: ResultCache,
    flights: SingleFlight,
    stopping: AtomicBool,
    default_deadline: Duration,
    queue_depth: usize,
    slo: SloThresholds,
    /// One waker per event loop, registered at loop start; `stop` wakes
    /// them all so no loop sleeps through a shutdown.
    wakers: Mutex<Vec<Waker>>,
}

impl Shared {
    fn stop(&self) {
        self.stopping.store(true, Ordering::Release);
        for waker in self.wakers.lock().expect("wakers poisoned").iter() {
            waker.wake();
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    scrape_interval: Duration,
    loops: usize,
    snapshot_path: Option<PathBuf>,
    snapshot_report: Option<Result<Option<usize>, String>>,
}

impl Server {
    /// Binds the listener, spins up the worker pool, and — when a
    /// snapshot path is configured — warm-loads the result cache
    /// (rejections are reported by [`Server::snapshot_load_report`],
    /// not fatal: the server simply starts cold).
    ///
    /// # Errors
    ///
    /// When the address cannot be parsed or bound.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind `{}`: {e}", config.addr))?;
        let cores =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let threads = if config.threads == 0 { cores } else { config.threads };
        let loops = if config.loops == 0 { cores.clamp(1, 8) } else { config.loops };
        let shared = Arc::new(Shared {
            pool: WorkerPool::new(threads, config.queue_depth.max(1)),
            cache: ResultCache::new(config.cache_entries),
            flights: SingleFlight::new(),
            stopping: AtomicBool::new(false),
            default_deadline: config.default_deadline,
            queue_depth: config.queue_depth.max(1),
            slo: config.slo.clone(),
            wakers: Mutex::new(Vec::new()),
        });
        let snapshot_report = config
            .snapshot_path
            .as_ref()
            .map(|path| snapshot::load(&shared.cache, path));
        Ok(Server {
            listener,
            shared,
            scrape_interval: config.scrape_interval,
            loops,
            snapshot_path: config.snapshot_path.clone(),
            snapshot_report,
        })
    }

    /// What the snapshot load at bind did: `None` when no snapshot path
    /// is configured; otherwise `Ok(None)` (no file, cold start),
    /// `Ok(Some(n))` (restored `n` entries), or `Err(reason)` (rejected
    /// — the server started cold and the caller should log why).
    pub fn snapshot_load_report(&self) -> Option<&Result<Option<usize>, String>> {
        self.snapshot_report.as_ref()
    }

    /// The address the listener actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// When the OS cannot report the socket address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Serves until a `shutdown` request arrives, then drains in-flight
    /// work, persists the cache snapshot (when configured), and returns.
    ///
    /// # Errors
    ///
    /// When the listener cannot be switched to nonblocking mode, an
    /// event loop dies on a socket error, or the drain snapshot cannot
    /// be written.
    pub fn run(self) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot poll listener: {e}"))?;
        let scraper = (self.scrape_interval > Duration::ZERO).then(|| {
            let shared = Arc::clone(&self.shared);
            let interval = self.scrape_interval;
            std::thread::spawn(move || {
                // Scrape immediately so even a short-lived server leaves
                // at least one point, then on the interval. Sleeping in
                // small slices keeps shutdown prompt without condvars.
                scrape_series();
                while !shared.stopping.load(Ordering::Acquire) {
                    let start = Instant::now();
                    while start.elapsed() < interval {
                        if shared.stopping.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(25).min(interval));
                    }
                    scrape_series();
                }
            })
        });
        let mut handles = Vec::with_capacity(self.loops);
        let mut result = Ok(());
        for _ in 0..self.loops.max(1) {
            let listener = match self.listener.try_clone() {
                Ok(l) => l,
                Err(e) => {
                    // Already-spawned loops must not be stranded.
                    self.shared.stop();
                    result = Err(format!("cannot share listener: {e}"));
                    break;
                }
            };
            let shared = Arc::clone(&self.shared);
            handles.push(std::thread::spawn(move || -> Result<(), String> {
                let outcome = EventLoop::new(listener, Arc::clone(&shared))
                    .and_then(|mut event_loop| event_loop.run());
                if outcome.is_err() {
                    // A dying loop must not strand its siblings: stop
                    // the whole server so `run` can report the error.
                    shared.stop();
                }
                outcome
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if result.is_ok() {
                        result = Err(e);
                    }
                }
                Err(_) => {
                    self.shared.stop();
                    if result.is_ok() {
                        result = Err("event loop panicked".to_string());
                    }
                }
            }
        }
        drop(self.listener);
        self.shared.pool.drain();
        if result.is_ok() {
            if let Some(path) = &self.snapshot_path {
                if self.shared.cache.enabled() {
                    result = snapshot::save(&self.shared.cache, path).map(|_| ());
                }
            }
        }
        if let Some(scraper) = scraper {
            let _ = scraper.join();
        }
        result
    }
}

/// Flight-recorder detail payload for a `request_start` event: the op's
/// position in the wire grammar (1-based), documented in
/// docs/ARCHITECTURE.md. The op *name* travels in the trace span; the
/// flight slot only has a u64.
fn op_ordinal(op: &Op) -> u64 {
    match op {
        Op::Explore(_) => 1,
        Op::Pareto(_) => 2,
        Op::Report { .. } => 3,
        Op::Codegen(_) => 4,
        Op::Stats { .. } => 5,
        Op::Trace => 6,
        Op::Prom => 7,
        Op::Ping => 8,
        Op::Shutdown => 9,
        Op::Health => 10,
        Op::Batch(_) => 11,
        Op::Profile => 12,
        Op::Memstats => 13,
    }
}

/// Builds the `memstats` result (`datareuse-memstats-v1`): the tracking
/// allocator's process-wide tallies plus a `serve` section attributing
/// allocation work on the serving path. `computed` counts singleflight
/// *leaders* (requests that actually ran an exploration) while
/// `coalesced_followers` counts requests answered by copying the
/// leader's bytes — followers copy, they do not recompute, so dividing
/// an allocation delta by `computed` (not by `requests`) is how to get
/// bytes-per-computation without double-counting the leader's delta
/// once per follower.
fn memstats_result(shared: &Shared) -> String {
    let a = datareuse_obs::alloc_snapshot();
    let snap = datareuse_obs::snapshot();
    Json::obj([
        ("schema", Json::str("datareuse-memstats-v1")),
        (
            "allocator",
            Json::obj([
                ("allocs", Json::UInt(a.allocs)),
                ("deallocs", Json::UInt(a.deallocs)),
                ("reallocs", Json::UInt(a.reallocs)),
                ("bytes_allocated", Json::UInt(a.bytes_allocated)),
                ("bytes_freed", Json::UInt(a.bytes_freed)),
                ("live_bytes", Json::UInt(a.live_bytes)),
                ("peak_bytes", Json::UInt(a.peak_bytes)),
            ]),
        ),
        (
            "serve",
            Json::obj([
                ("requests", Json::UInt(snap.counter(Counter::ServeRequests))),
                ("computed", Json::UInt(snap.counter(Counter::ServeCacheMisses))),
                (
                    "coalesced_followers",
                    Json::UInt(snap.counter(Counter::ServeCoalesced)),
                ),
                ("cache_hits", Json::UInt(snap.counter(Counter::ServeCacheHits))),
                ("queue_depth", Json::UInt(shared.pool.queued() as u64)),
            ]),
        ),
    ])
    .to_string()
}

/// Builds the `stats` result: the metrics-v2 snapshot plus a `derived`
/// section (hit ratio, coalesced count, open connections, queue depths,
/// requests served) and, on request, the full flight-recorder tail and
/// the scraped metrics series.
fn stats_result(shared: &Shared, flight: bool, series: bool) -> String {
    let snap = datareuse_obs::snapshot();
    let hits = snap.counter(Counter::ServeCacheHits);
    let coalesced = snap.counter(Counter::ServeCoalesced);
    let misses = snap.counter(Counter::ServeCacheMisses);
    let derived = Json::obj([
        ("requests_served", Json::UInt(snap.counter(Counter::ServeRequests))),
        ("cache_hit_ratio", Json::Num(hit_ratio(hits, coalesced, misses))),
        ("coalesced_requests", Json::UInt(coalesced)),
        (
            "open_connections",
            Json::UInt(gauge_value(Gauge::ServeOpenConnections)),
        ),
        ("queue_depth", Json::UInt(shared.pool.queued() as u64)),
        (
            "queue_depth_max",
            Json::UInt(gauge_value(Gauge::ServeQueueDepthMax)),
        ),
    ]);
    let Json::Obj(mut entries) = snap.to_json() else {
        unreachable!("snapshot JSON is always an object");
    };
    entries.push(("derived".to_string(), derived));
    if flight {
        entries.push(("flight".to_string(), flight_tail_json(usize::MAX)));
    }
    if series {
        entries.push(("series".to_string(), series_json()));
    }
    Json::Obj(entries).to_string()
}

/// One health check's grade. Ordered so `max` picks the worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Grade {
    Ok,
    Degraded,
    Failing,
}

impl Grade {
    fn name(self) -> &'static str {
        match self {
            Grade::Ok => "ok",
            Grade::Degraded => "degraded",
            Grade::Failing => "failing",
        }
    }
}

/// Builds the `health` result: each SLO check graded individually plus
/// the worst grade overall. The thresholds come from [`ServerConfig`];
/// `datareuse query` maps the overall status onto exit codes so probes
/// can alert without parsing JSON.
fn health_result(shared: &Shared) -> String {
    let slo = &shared.slo;
    // Latency: p99 over all requests, cache hits and misses merged —
    // the client cares about the answer's latency, not where it came
    // from. An empty histogram (no requests yet) passes vacuously.
    let lat = hist_snapshot(Hist::ServeLatencyCold).merge(&hist_snapshot(Hist::ServeLatencyCacheHit));
    let p99_ms = lat.p99() as f64 / 1e6;
    let slo_ms = slo.p99_latency.as_secs_f64() * 1e3;
    let latency = if lat.count == 0 || p99_ms <= slo_ms {
        Grade::Ok
    } else if p99_ms <= 4.0 * slo_ms {
        Grade::Degraded
    } else {
        Grade::Failing
    };
    // Hit ratio: only meaningful once enough probes have happened; a
    // server that has barely been asked anything is not unhealthy.
    // Coalesced followers are cache-path (see [`hit_ratio`]).
    let snap = datareuse_obs::snapshot();
    let hits = snap.counter(Counter::ServeCacheHits);
    let coalesced = snap.counter(Counter::ServeCoalesced);
    let misses = snap.counter(Counter::ServeCacheMisses);
    let probes = hits + coalesced + misses;
    let ratio = hit_ratio(hits, coalesced, misses);
    let hit_grade = if probes < SloThresholds::MIN_HIT_PROBES || ratio >= slo.min_hit_ratio {
        Grade::Ok
    } else if ratio >= slo.min_hit_ratio / 2.0 {
        Grade::Degraded
    } else {
        Grade::Failing
    };
    // Queue: a full queue is already refusing work (`overloaded`), so
    // it grades `failing`; past the SLO fraction but not full is the
    // early warning.
    let depth = shared.pool.queued();
    let saturation = depth as f64 / shared.queue_depth as f64;
    let queue = if saturation <= slo.max_queue_saturation {
        Grade::Ok
    } else if saturation < 1.0 {
        Grade::Degraded
    } else {
        Grade::Failing
    };
    let overall = latency.max(hit_grade).max(queue);
    let check = |grade: Grade, detail: Vec<(&str, Json)>| {
        let mut entries = vec![("status", Json::str(grade.name()))];
        entries.extend(detail);
        Json::obj(entries)
    };
    Json::obj([
        ("status", Json::str(overall.name())),
        (
            "checks",
            Json::obj([
                (
                    "latency",
                    check(
                        latency,
                        vec![
                            ("p99_ms", Json::Num(p99_ms)),
                            ("slo_ms", Json::Num(slo_ms)),
                            ("samples", Json::UInt(lat.count)),
                        ],
                    ),
                ),
                (
                    "hit_ratio",
                    check(
                        hit_grade,
                        vec![
                            ("ratio", Json::Num(ratio)),
                            ("slo", Json::Num(slo.min_hit_ratio)),
                            ("probes", Json::UInt(probes)),
                        ],
                    ),
                ),
                (
                    "queue",
                    check(
                        queue,
                        vec![
                            ("depth", Json::UInt(depth as u64)),
                            ("capacity", Json::UInt(shared.queue_depth as u64)),
                            ("saturation", Json::Num(saturation)),
                            ("slo", Json::Num(slo.max_queue_saturation)),
                        ],
                    ),
                ),
            ]),
        ),
    ])
    .to_string()
}

/// Where a finished computation's outcome lands: a connection response
/// slot, or one position of a batch.
#[derive(Debug, Clone, Copy)]
enum Target {
    /// Slot `seq` of connection `conn` (generation-checked so a recycled
    /// slab index cannot receive a predecessor's late result).
    Conn { conn: usize, gen: u64, seq: u64 },
    /// Position `idx` of batch `batch`.
    Batch { batch: u64, idx: usize },
}

/// One completed (or refused) computation headed back to the loop.
struct Completion {
    target: Target,
    outcome: Result<Arc<str>, OpError>,
    coalesced: bool,
}

/// What to render into a response slot.
enum Deliver {
    /// A serialized result document.
    Ok {
        raw: Arc<str>,
        cached: bool,
        coalesced: bool,
    },
    /// A structured refusal.
    Err(OpError),
}

/// Renders a response envelope and does the response-side accounting:
/// error counters (`serve_timeouts` / `serve_overloaded` /
/// `serve_errors`) are recorded here, exactly once per response, and
/// timeout/overloaded refusals carry the flight-recorder tail.
fn render_response(id: Option<&Json>, deliver: &Deliver) -> (String, bool) {
    match deliver {
        Deliver::Ok {
            raw,
            cached,
            coalesced,
        } => (
            ok_envelope_coalesced(id, *cached, *coalesced, raw),
            *cached,
        ),
        Deliver::Err(e) => {
            add(
                if e.code == E_TIMEOUT {
                    Counter::ServeTimeouts
                } else if e.code == E_OVERLOADED {
                    Counter::ServeOverloaded
                } else {
                    Counter::ServeErrors
                },
                1,
            );
            let flight = (e.code == E_TIMEOUT || e.code == E_OVERLOADED)
                .then(|| flight_tail_json(FLIGHT_ERROR_TAIL));
            (
                err_envelope_with_flight(id, e.code, &e.message, flight),
                false,
            )
        }
    }
}

/// One pipelined request awaiting its response. Slots flush strictly in
/// arrival order; a filled slot behind an unfilled one waits.
struct Slot {
    seq: u64,
    started: Instant,
    trace_id: u64,
    id: Option<Json>,
    deadline_ms: u64,
    /// `Some` only while a compute outcome is pending; inline ops and
    /// batch parents (whose batch carries the deadline) have `None`.
    expires: Option<Instant>,
    response: Option<String>,
    cache_hit: bool,
}

/// One client connection owned by an event loop.
struct Conn {
    stream: TcpStream,
    gen: u64,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    slots: VecDeque<Slot>,
    next_seq: u64,
    peer_closed: bool,
    dead: bool,
}

/// An in-progress `batch` op: sub-responses accumulate out of order and
/// the parent slot fills when the last one lands (or the deadline does).
struct BatchState {
    conn: usize,
    gen: u64,
    seq: u64,
    sub_ids: Vec<Option<Json>>,
    responses: Vec<Option<String>>,
    remaining: usize,
    expires: Instant,
    deadline_ms: u64,
    trace_id: u64,
}

/// One readiness loop: a shared-listener acceptor plus the connections
/// it has accepted.
struct EventLoop {
    listener: TcpListener,
    shared: Arc<Shared>,
    wake: WakePipe,
    waker: Waker,
    completions: Arc<Mutex<Vec<Completion>>>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    batches: HashMap<u64, BatchState>,
    next_batch: u64,
    next_gen: u64,
    stop_seen: Option<Instant>,
}

impl EventLoop {
    fn new(listener: TcpListener, shared: Arc<Shared>) -> Result<EventLoop, String> {
        let wake = WakePipe::new().map_err(|e| format!("cannot build wake pipe: {e}"))?;
        let waker = wake.waker();
        shared
            .wakers
            .lock()
            .expect("wakers poisoned")
            .push(waker.clone());
        Ok(EventLoop {
            listener,
            shared,
            wake,
            waker,
            completions: Arc::new(Mutex::new(Vec::new())),
            conns: Vec::new(),
            free: Vec::new(),
            batches: HashMap::new(),
            next_batch: 0,
            next_gen: 0,
            stop_seen: None,
        })
    }

    fn run(&mut self) -> Result<(), String> {
        loop {
            let stopping = self.shared.stopping.load(Ordering::Acquire);
            if stopping {
                if self.stop_seen.is_none() {
                    self.stop_seen = Some(Instant::now());
                }
                let live = self.conns.iter().filter(|c| c.is_some()).count();
                if live == 0 {
                    return Ok(());
                }
                if self.stop_seen.is_some_and(|t| t.elapsed() > DRAIN_GRACE) {
                    // Stragglers past the grace window are cut loose;
                    // their unwritten responses die with them.
                    for slot in &mut self.conns {
                        if slot.take().is_some() {
                            gauge_sub(Gauge::ServeOpenConnections, 1);
                        }
                    }
                    return Ok(());
                }
            }
            let mut fds = Vec::with_capacity(self.conns.len() + 2);
            let mut owners = Vec::with_capacity(self.conns.len() + 2);
            let listener_slot = (!stopping).then(|| {
                fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                owners.push(usize::MAX);
                fds.len() - 1
            });
            fds.push(PollFd::new(self.wake.fd(), POLLIN));
            owners.push(usize::MAX);
            for (i, conn) in self.conns.iter().enumerate() {
                let Some(c) = conn else { continue };
                let mut events = 0i16;
                if !c.peer_closed && !stopping && c.slots.len() < MAX_PIPELINE {
                    events |= POLLIN;
                }
                if !c.wbuf.is_empty() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    fds.push(PollFd::new(c.stream.as_raw_fd(), events));
                    owners.push(i);
                }
            }
            let timeout = self.next_timeout(stopping);
            reactor::poll(&mut fds, Some(timeout)).map_err(|e| format!("poll failed: {e}"))?;
            self.wake.drain();
            self.apply_completions();
            self.expire();
            let mut do_accept = false;
            for (k, fd) in fds.iter().enumerate() {
                if !fd.readable() && !fd.writable() {
                    continue;
                }
                if owners[k] == usize::MAX {
                    if listener_slot == Some(k) {
                        do_accept = true;
                    }
                    continue;
                }
                if fd.readable() {
                    self.read_conn(owners[k]);
                }
            }
            if do_accept {
                self.accept_all();
            }
            for i in 0..self.conns.len() {
                self.pump(i);
            }
            self.reap(self.shared.stopping.load(Ordering::Acquire));
        }
    }

    /// The nearest pending deadline, clamped to the idle tick — what the
    /// loop hands `poll` so an expiry is noticed on time even with no
    /// socket activity.
    fn next_timeout(&self, stopping: bool) -> Duration {
        let mut tick = if stopping {
            Duration::from_millis(25)
        } else {
            IDLE_TICK
        };
        let now = Instant::now();
        for conn in self.conns.iter().flatten() {
            for slot in &conn.slots {
                if slot.response.is_none() {
                    if let Some(t) = slot.expires {
                        tick = tick.min(t.saturating_duration_since(now));
                    }
                }
            }
        }
        for batch in self.batches.values() {
            tick = tick.min(batch.expires.saturating_duration_since(now));
        }
        // Never hand poll a zero timeout: already-due work was expired
        // above, and a 0ms poll under load degenerates into a busy spin.
        tick.max(Duration::from_millis(1))
    }

    /// Drains the completion queue filled by worker callbacks.
    fn apply_completions(&mut self) {
        let done = std::mem::take(
            &mut *self.completions.lock().expect("completions poisoned"),
        );
        for completion in done {
            let deliver = match completion.outcome {
                Ok(raw) => Deliver::Ok {
                    raw,
                    cached: false,
                    coalesced: completion.coalesced,
                },
                Err(e) => Deliver::Err(e),
            };
            self.deliver(completion.target, &deliver);
        }
    }

    fn deliver(&mut self, target: Target, deliver: &Deliver) {
        match target {
            Target::Conn { conn, gen, seq } => self.fill_conn(conn, gen, seq, deliver),
            Target::Batch { batch, idx } => self.fill_batch(batch, idx, deliver),
        }
    }

    /// Renders `deliver` into slot `seq` of connection `conn`. A stale
    /// target (connection gone, generation recycled, slot already
    /// answered by expiry) is ignored — late results only warm the
    /// cache.
    fn fill_conn(&mut self, conn: usize, gen: u64, seq: u64, deliver: &Deliver) {
        let Some(Some(c)) = self.conns.get_mut(conn) else {
            return;
        };
        if c.gen != gen {
            return;
        }
        let Some(slot) = c.slots.iter_mut().find(|s| s.seq == seq) else {
            return;
        };
        if slot.response.is_some() {
            return;
        }
        let (response, cache_hit) = render_response(slot.id.as_ref(), deliver);
        slot.response = Some(response);
        slot.cache_hit = cache_hit;
    }

    fn fill_batch(&mut self, batch: u64, idx: usize, deliver: &Deliver) {
        let Some(state) = self.batches.get_mut(&batch) else {
            return;
        };
        if state.responses[idx].is_some() {
            return;
        }
        let (response, _) = render_response(state.sub_ids[idx].as_ref(), deliver);
        state.responses[idx] = Some(response);
        state.remaining -= 1;
        if state.remaining == 0 {
            self.finalize_batch(batch);
        }
    }

    /// Assembles a completed batch into its parent envelope:
    /// `{"responses": [<sub envelope>, …]}` in request order.
    fn finalize_batch(&mut self, batch: u64) {
        let Some(state) = self.batches.remove(&batch) else {
            return;
        };
        let mut raw = String::from("{\"responses\":[");
        for (i, response) in state.responses.into_iter().enumerate() {
            if i > 0 {
                raw.push(',');
            }
            raw.push_str(&response.expect("finalized batch is complete"));
        }
        raw.push_str("]}");
        self.fill_conn(
            state.conn,
            state.gen,
            state.seq,
            &Deliver::Ok {
                raw: Arc::from(raw),
                cached: false,
                coalesced: false,
            },
        );
    }

    /// Answers every slot and batch whose deadline has passed with a
    /// structured `timeout`. The underlying computation (if any) keeps
    /// running and still warms the cache when it lands.
    fn expire(&mut self) {
        let now = Instant::now();
        let mut due: Vec<(usize, u64, u64, u64, u64)> = Vec::new();
        for (i, conn) in self.conns.iter().enumerate() {
            let Some(c) = conn else { continue };
            for slot in &c.slots {
                if slot.response.is_none()
                    && slot.expires.is_some_and(|t| now >= t)
                {
                    due.push((i, c.gen, slot.seq, slot.trace_id, slot.deadline_ms));
                }
            }
        }
        for (conn, gen, seq, trace_id, deadline_ms) in due {
            flight_record(FlightKind::DeadlineExpiry, trace_id, deadline_ms);
            self.fill_conn(
                conn,
                gen,
                seq,
                &Deliver::Err(OpError {
                    code: E_TIMEOUT,
                    message: format!("deadline of {deadline_ms}ms expired"),
                }),
            );
        }
        let expired: Vec<u64> = self
            .batches
            .iter()
            .filter(|(_, b)| now >= b.expires)
            .map(|(&k, _)| k)
            .collect();
        for key in expired {
            let (n, trace_id, deadline_ms) = {
                let b = &self.batches[&key];
                (b.responses.len(), b.trace_id, b.deadline_ms)
            };
            flight_record(FlightKind::DeadlineExpiry, trace_id, deadline_ms);
            for idx in 0..n {
                // fill_batch skips already-answered positions and
                // finalizes on the last fill.
                self.fill_batch(
                    key,
                    idx,
                    &Deliver::Err(OpError {
                        code: E_TIMEOUT,
                        message: format!("deadline of {deadline_ms}ms expired"),
                    }),
                );
            }
        }
    }

    fn read_conn(&mut self, index: usize) {
        let Some(Some(c)) = self.conns.get_mut(index) else {
            return;
        };
        let mut buf = [0u8; 16 * 1024];
        loop {
            match c.stream.read(&mut buf) {
                Ok(0) => {
                    c.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    c.rbuf.extend_from_slice(&buf[..n]);
                    if c.rbuf.len() > MAX_LINE && !c.rbuf.contains(&b'\n') {
                        c.dead = true; // not a protocol client
                        break;
                    }
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    c.dead = true;
                    break;
                }
            }
        }
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // One request = one response line; Nagle coalescing
                    // only adds a delayed-ACK round trip per exchange.
                    let _ = stream.set_nodelay(true);
                    gauge_add(Gauge::ServeOpenConnections, 1);
                    let gen = self.next_gen;
                    self.next_gen += 1;
                    let conn = Conn {
                        stream,
                        gen,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        slots: VecDeque::new(),
                        next_seq: 0,
                        peer_closed: false,
                        dead: false,
                    };
                    match self.free.pop() {
                        Some(i) => self.conns[i] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (fd exhaustion, aborted
                // handshake): leave the backlog for the next readiness.
                Err(_) => break,
            }
        }
    }

    /// Parses buffered lines into dispatches (bounded by the pipeline
    /// cap), then flushes whatever responses are ready.
    fn pump(&mut self, index: usize) {
        loop {
            let Some(Some(c)) = self.conns.get_mut(index) else {
                return;
            };
            if c.dead || c.slots.len() >= MAX_PIPELINE {
                break;
            }
            let Some(pos) = c.rbuf.iter().position(|&b| b == b'\n') else {
                break;
            };
            let line: Vec<u8> = c.rbuf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            self.dispatch_line(index, &line);
        }
        self.flush(index);
    }

    /// Moves completed in-order responses into the write buffer (doing
    /// the per-request latency accounting at that moment) and writes as
    /// much as the socket accepts.
    fn flush(&mut self, index: usize) {
        let Some(Some(c)) = self.conns.get_mut(index) else {
            return;
        };
        if c.dead {
            return;
        }
        while let Some(front) = c.slots.front() {
            if front.response.is_none() {
                break;
            }
            let slot = c.slots.pop_front().expect("front exists");
            let elapsed_ns = slot.started.elapsed().as_nanos() as u64;
            record_hist(
                if slot.cache_hit {
                    Hist::ServeLatencyCacheHit
                } else {
                    Hist::ServeLatencyCold
                },
                elapsed_ns,
            );
            flight_record(FlightKind::RequestEnd, slot.trace_id, elapsed_ns / 1_000);
            c.wbuf
                .extend_from_slice(slot.response.expect("checked above").as_bytes());
            c.wbuf.push(b'\n');
        }
        while !c.wbuf.is_empty() {
            match c.stream.write(&c.wbuf) {
                Ok(0) => {
                    c.dead = true;
                    break;
                }
                Ok(n) => {
                    c.wbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    c.dead = true;
                    break;
                }
            }
        }
    }

    /// Closes connections that died or have nothing left to say.
    fn reap(&mut self, stopping: bool) {
        for i in 0..self.conns.len() {
            let close = match &self.conns[i] {
                Some(c) => {
                    c.dead
                        || ((c.peer_closed || stopping)
                            && c.wbuf.is_empty()
                            && c.slots.is_empty())
                }
                None => false,
            };
            if close {
                self.conns[i] = None;
                self.free.push(i);
                gauge_sub(Gauge::ServeOpenConnections, 1);
            }
        }
    }

    /// Appends a response slot for connection `index`; returns the
    /// (generation, sequence) pair that addresses it.
    fn push_slot(
        &mut self,
        index: usize,
        started: Instant,
        trace_id: u64,
        id: Option<Json>,
        deadline_ms: u64,
        expires: Option<Instant>,
    ) -> Option<(u64, u64)> {
        let Some(Some(c)) = self.conns.get_mut(index) else {
            return None;
        };
        let seq = c.next_seq;
        c.next_seq += 1;
        c.slots.push_back(Slot {
            seq,
            started,
            trace_id,
            id,
            deadline_ms,
            expires,
            response: None,
            cache_hit: false,
        });
        Some((c.gen, seq))
    }

    /// Processes one request line: parse, answer inline ops on the spot,
    /// unpack batches, route compute through cache → singleflight →
    /// worker pool.
    fn dispatch_line(&mut self, index: usize, line: &str) {
        add(Counter::ServeRequests, 1);
        let started = Instant::now();
        // Every request gets a trace id even when tracing is off: the
        // flight recorder uses it to correlate events.
        let root = TraceCtx::root();
        let _attach = root.attach();
        let request = match Request::parse_line(line) {
            Ok(r) => r,
            Err(msg) => {
                // Echo the id back even for bodies that failed
                // validation — the document may still be well-formed
                // JSON with a bad op.
                let id = Json::parse(line).ok().and_then(|doc| doc.get("id").cloned());
                if let Some((gen, seq)) =
                    self.push_slot(index, started, root.trace_id, id, 0, None)
                {
                    self.fill_conn(
                        index,
                        gen,
                        seq,
                        &Deliver::Err(OpError {
                            code: E_BAD_REQUEST,
                            message: msg,
                        }),
                    );
                }
                return;
            }
        };
        // The request span nests every child (cache probe, queue wait,
        // execute) under one trace; its ctx is what crosses to the
        // worker.
        let request_span = trace_span_with("request", request.op.name());
        let ctx = request_span.ctx().unwrap_or(root);
        flight_record(FlightKind::RequestStart, ctx.trace_id, op_ordinal(&request.op));
        let id = request.id.clone();
        let deadline = request
            .deadline_ms
            .map_or(self.shared.default_deadline, Duration::from_millis);
        let deadline_ms = deadline.as_millis() as u64;
        if let Some(raw) = self.inline_result(&request.op) {
            if let Some((gen, seq)) =
                self.push_slot(index, started, ctx.trace_id, id, deadline_ms, None)
            {
                self.fill_conn(
                    index,
                    gen,
                    seq,
                    &Deliver::Ok {
                        raw,
                        cached: false,
                        coalesced: false,
                    },
                );
            }
            return;
        }
        if let Op::Batch(subs) = request.op {
            self.dispatch_batch(index, started, ctx, id, subs, deadline, deadline_ms);
            return;
        }
        let expires = started + deadline;
        let Some((gen, seq)) = self.push_slot(
            index,
            started,
            ctx.trace_id,
            id,
            deadline_ms,
            Some(expires),
        ) else {
            return;
        };
        self.dispatch_compute(
            Target::Conn {
                conn: index,
                gen,
                seq,
            },
            request.op,
            request.cache_key,
            ctx,
            expires,
            deadline_ms,
        );
    }

    /// Answers a control/introspection op without touching the worker
    /// pool; `None` means the op needs compute dispatch.
    fn inline_result(&self, op: &Op) -> Option<Arc<str>> {
        let raw: String = match op {
            Op::Ping => r#""pong""#.to_string(),
            Op::Stats { flight, series } => stats_result(&self.shared, *flight, *series),
            Op::Health => health_result(&self.shared),
            Op::Trace => chrome_trace_json(&take_trace_events()).to_string(),
            Op::Prom => Json::str(prometheus_text(&datareuse_obs::snapshot())).to_string(),
            Op::Profile => datareuse_obs::profile_json().to_string(),
            Op::Memstats => memstats_result(&self.shared),
            Op::Shutdown => {
                self.shared.stop();
                r#""draining""#.to_string()
            }
            _ => return None,
        };
        Some(Arc::from(raw))
    }

    /// Unpacks a `batch` op: inline sub-ops answer immediately, compute
    /// sub-ops are individually keyed (cached and coalesced exactly like
    /// standalone requests); the parent's deadline governs them all.
    fn dispatch_batch(
        &mut self,
        index: usize,
        started: Instant,
        ctx: TraceCtx,
        id: Option<Json>,
        subs: Vec<Request>,
        deadline: Duration,
        deadline_ms: u64,
    ) {
        add(Counter::ServeBatchRequests, subs.len() as u64);
        let Some((gen, seq)) =
            self.push_slot(index, started, ctx.trace_id, id, deadline_ms, None)
        else {
            return;
        };
        let expires = started + deadline;
        let batch = self.next_batch;
        self.next_batch += 1;
        self.batches.insert(
            batch,
            BatchState {
                conn: index,
                gen,
                seq,
                sub_ids: subs.iter().map(|r| r.id.clone()).collect(),
                responses: vec![None; subs.len()],
                remaining: subs.len(),
                expires,
                deadline_ms,
                trace_id: ctx.trace_id,
            },
        );
        for (idx, sub) in subs.into_iter().enumerate() {
            let target = Target::Batch { batch, idx };
            if let Some(raw) = self.inline_result(&sub.op) {
                self.deliver(
                    target,
                    &Deliver::Ok {
                        raw,
                        cached: false,
                        coalesced: false,
                    },
                );
                continue;
            }
            self.dispatch_compute(target, sub.op, sub.cache_key, ctx, expires, deadline_ms);
        }
    }

    /// Routes one compute op: cache probe, then singleflight join (the
    /// leader submits the worker job; followers just subscribe), with
    /// overload/drain refusals delivered through the same completion
    /// path.
    fn dispatch_compute(
        &mut self,
        target: Target,
        op: Op,
        key: Option<u64>,
        ctx: TraceCtx,
        expires: Instant,
        deadline_ms: u64,
    ) {
        if let Some(key) = key {
            let hit = {
                let _cache = span("cache");
                self.shared.cache.get(key)
            };
            if let Some(raw) = hit {
                self.deliver(
                    target,
                    &Deliver::Ok {
                        raw,
                        cached: true,
                        coalesced: false,
                    },
                );
                return;
            }
        }
        if self.shared.stopping.load(Ordering::Acquire) {
            self.deliver(
                target,
                &Deliver::Err(OpError {
                    code: E_SHUTTING_DOWN,
                    message: "server is draining".to_string(),
                }),
            );
            return;
        }
        let Some(key) = key else {
            // Compute ops are always cacheable, so a missing key means a
            // new op forgot its grammar entry; refuse loudly rather than
            // compute outside the coalescing map.
            self.deliver(
                target,
                &Deliver::Err(OpError {
                    code: crate::protocol::E_INTERNAL,
                    message: "compute op has no cache key".to_string(),
                }),
            );
            return;
        };
        let completions = Arc::clone(&self.completions);
        let waker = self.waker.clone();
        let subscriber: Subscriber = Box::new(move |outcome, coalesced| {
            completions
                .lock()
                .expect("completions poisoned")
                .push(Completion {
                    target,
                    outcome: outcome.clone(),
                    coalesced,
                });
            waker.wake();
        });
        match self.shared.flights.join(key, subscriber) {
            JoinRole::Follower => {
                add(Counter::ServeCoalesced, 1);
                flight_record(FlightKind::Coalesced, ctx.trace_id, key);
            }
            JoinRole::Leader => {
                add(Counter::ServeCacheMisses, 1);
                flight_record(FlightKind::CacheMiss, ctx.trace_id, key);
                self.submit_leader(op, key, ctx, expires, deadline_ms);
            }
        }
    }

    /// Submits the singleflight leader's job to the worker pool; a full
    /// queue refuses the whole flight (leader and any followers that
    /// joined in the window) with one shared outcome.
    fn submit_leader(&self, op: Op, key: u64, ctx: TraceCtx, expires: Instant, deadline_ms: u64) {
        let shared = Arc::clone(&self.shared);
        let submitted_at = Instant::now();
        let submitted_ts = trace_now_ns();
        let job = Box::new(move || {
            // Re-install the request's trace context on the worker
            // thread so spans opened here nest under the request.
            let _attach = ctx.attach();
            let wait_ns = submitted_at.elapsed().as_nanos() as u64;
            record_hist(Hist::ServeQueueWait, wait_ns);
            // The wait starts on the loop thread and ends here, so it is
            // recorded directly rather than via a guard.
            record_span_at("queue_wait", ctx, submitted_ts, wait_ns);
            // A worker picking up an expired job may skip the compute —
            // but only when nobody else coalesced onto it: a follower
            // with a longer deadline still wants the result.
            if Instant::now() >= expires && shared.flights.waiting(key) <= 1 {
                flight_record(FlightKind::DeadlineExpiry, ctx.trace_id, deadline_ms);
                shared.flights.complete(
                    key,
                    &Err(OpError {
                        code: E_TIMEOUT,
                        message: "deadline expired before execution".to_string(),
                    }),
                );
                return;
            }
            let outcome = {
                let _exec = trace_span_with("execute", op.name());
                ops::execute(&op).map(|result| {
                    let raw: Arc<str> = Arc::from(result.to_string());
                    shared.cache.insert(key, Arc::clone(&raw));
                    raw
                })
            };
            shared.flights.complete(key, &outcome);
        });
        if self.shared.pool.try_submit(job).is_err() {
            let queued = self.shared.pool.queued();
            flight_record(FlightKind::QueueReject, ctx.trace_id, queued as u64);
            let outcome = if self.shared.stopping.load(Ordering::Acquire) {
                Err(OpError {
                    code: E_SHUTTING_DOWN,
                    message: "server is draining".to_string(),
                })
            } else {
                Err(OpError {
                    code: E_OVERLOADED,
                    message: format!("queue full ({queued} waiting); retry later"),
                })
            };
            self.shared.flights.complete(key, &outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, BufWriter, Write};

    fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(&config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn roundtrip(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut out = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            out.push(Json::parse(&response).unwrap());
        }
        out
    }

    #[test]
    fn ping_explore_and_shutdown_over_a_real_socket() {
        let (addr, handle) = start(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"ping","id":1}"#,
                r#"{"op":"explore","kernel":"fir","id":2}"#,
                r#"{"op":"explore","kernel":"fir","id":3}"#,
                r#"{"op":"bogus","id":4}"#,
                r#"{"op":"shutdown","id":5}"#,
            ],
        );
        assert_eq!(responses[0].get("result").and_then(Json::as_str), Some("pong"));
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(responses[1].get("cached").and_then(Json::as_bool), Some(false));
        assert!(responses[1].get("result").and_then(|r| r.get("array")).is_some());
        // Same request again: served from cache, identical result bytes.
        assert_eq!(responses[2].get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            responses[1].get("result").map(Json::to_string),
            responses[2].get("result").map(Json::to_string)
        );
        assert_eq!(responses[3].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            responses[3]
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(E_BAD_REQUEST)
        );
        assert_eq!(responses[3].get("id").and_then(Json::as_u64), Some(4));
        assert_eq!(responses[4].get("ok").and_then(Json::as_bool), Some(true));
        handle.join().unwrap();
    }

    #[test]
    fn profile_op_round_trips_byte_identical_span_trees() {
        let (addr, handle) = start(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"explore","kernel":"fir","id":1}"#,
                r#"{"op":"profile","id":2}"#,
                r#"{"op":"shutdown","id":3}"#,
            ],
        );
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
        let result = responses[1].get("result").expect("profile result");
        assert_eq!(
            result.get("schema").and_then(Json::as_str),
            Some("datareuse-profile-v1")
        );
        let rows = result.get("rows").and_then(Json::as_array).expect("rows");
        assert!(!rows.is_empty(), "explore must have populated the span tree");
        let mut self_sum = 0u64;
        let mut root_sum = 0u64;
        for row in rows {
            let path = row.get("path").and_then(Json::as_str).unwrap();
            let total = row.get("total_ns").and_then(Json::as_u64).unwrap();
            let own = row.get("self_ns").and_then(Json::as_u64).unwrap();
            assert!(own <= total, "{path}: self {own} exceeds total {total}");
            self_sum += own;
            if !path.contains('/') {
                root_sum += total;
            }
        }
        // Self times partition the cumulative root totals exactly.
        assert_eq!(self_sum, root_sum);
        // The document is canonical: reparse → reserialize is
        // byte-identical, so span trees survive the wire losslessly.
        let text = result.to_string();
        assert_eq!(text, Json::parse(&text).unwrap().to_string());
        handle.join().unwrap();
    }

    #[test]
    fn memstats_op_reports_allocator_tallies_and_serve_attribution() {
        let (addr, handle) = start(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"explore","kernel":"fir","id":1}"#,
                r#"{"op":"explore","kernel":"fir","id":2}"#,
                r#"{"op":"memstats","id":3}"#,
                r#"{"op":"memstats","id":4}"#,
                r#"{"op":"shutdown","id":5}"#,
            ],
        );
        assert_eq!(responses[2].get("ok").and_then(Json::as_bool), Some(true));
        // Non-cacheable control op: never marked cached, even repeated.
        assert_eq!(responses[2].get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(responses[3].get("cached").and_then(Json::as_bool), Some(false));
        let result = responses[2].get("result").expect("memstats result");
        assert_eq!(
            result.get("schema").and_then(Json::as_str),
            Some("datareuse-memstats-v1")
        );
        let alloc = result.get("allocator").expect("allocator section");
        let field = |key: &str| alloc.get(key).and_then(Json::as_u64).unwrap();
        assert!(field("allocs") > 0, "a running server has allocated");
        assert!(field("bytes_allocated") > 0);
        assert!(field("live_bytes") > 0);
        assert!(field("peak_bytes") >= field("live_bytes"));
        let serve = result.get("serve").expect("serve section");
        let sfield = |key: &str| serve.get(key).and_then(Json::as_u64).unwrap();
        // The serve section carries the attribution denominators —
        // `computed` (singleflight leaders) separate from raw requests
        // and from coalesced followers. Counters are process-global and
        // shared with concurrently running tests, so only consistency is
        // asserted here; the spawned-process K-coalesce test pins the
        // exact leader/follower split.
        for key in ["requests", "computed", "coalesced_followers", "cache_hits", "queue_depth"] {
            let _ = sfield(key); // unwraps: every denominator must be present
        }
        // Canonical document: reparse → reserialize byte-identical.
        let text = result.to_string();
        assert_eq!(text, Json::parse(&text).unwrap().to_string());
        handle.join().unwrap();
    }

    #[test]
    fn pipelined_requests_come_back_in_request_order() {
        let (addr, handle) = start(ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        });
        // All four requests in one write; responses must arrive in the
        // same order even though the pings answer inline while the
        // explores cross the worker pool.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer
            .write_all(
                concat!(
                    r#"{"op":"explore","kernel":"fir","id":1}"#,
                    "\n",
                    r#"{"op":"ping","id":2}"#,
                    "\n",
                    r#"{"op":"explore","kernel":"fir","id":3}"#,
                    "\n",
                    r#"{"op":"ping","id":4}"#,
                    "\n",
                )
                .as_bytes(),
            )
            .unwrap();
        writer.flush().unwrap();
        for expect in 1..=4u64 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let doc = Json::parse(&line).unwrap();
            assert_eq!(doc.get("id").and_then(Json::as_u64), Some(expect));
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        }
        roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
        handle.join().unwrap();
    }

    #[test]
    fn a_batch_answers_every_sub_request_in_one_envelope() {
        let (addr, handle) = start(ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                concat!(
                    r#"{"op":"batch","id":"b","requests":["#,
                    r#"{"op":"ping","id":"p"},"#,
                    r#"{"op":"explore","kernel":"fir","id":"e"},"#,
                    r#"{"op":"explore","kernel":"fir","id":"e2"}"#,
                    r#"]}"#
                ),
                r#"{"op":"explore","kernel":"fir","id":"solo"}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("b"));
        let subs = responses[0]
            .get("result")
            .and_then(|r| r.get("responses"))
            .and_then(Json::as_array)
            .expect("responses array");
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0].get("id").and_then(Json::as_str), Some("p"));
        assert_eq!(subs[0].get("result").and_then(Json::as_str), Some("pong"));
        for sub in &subs[1..] {
            assert_eq!(sub.get("ok").and_then(Json::as_bool), Some(true));
        }
        // The two identical sub-explores shared one computation: one is
        // the leader, the other either coalesced onto it or (having
        // dispatched after the fill) hit the cache.
        let coalesced_or_cached = subs[1..].iter().any(|s| {
            s.get("coalesced").and_then(Json::as_bool) == Some(true)
                || s.get("cached").and_then(Json::as_bool) == Some(true)
        });
        assert!(coalesced_or_cached, "identical subs shared work: {subs:?}");
        // Batch sub-results are byte-identical to the standalone op.
        assert_eq!(
            subs[1].get("result").map(Json::to_string),
            responses[1].get("result").map(Json::to_string)
        );
        handle.join().unwrap();
    }

    #[test]
    fn stats_series_and_health_report_on_a_live_server() {
        let (addr, handle) = start(ServerConfig {
            threads: 1,
            scrape_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"ping","id":1}"#,
                r#"{"op":"stats","series":true,"id":2}"#,
                r#"{"op":"health","id":3}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        let series = responses[1]
            .get("result")
            .and_then(|r| r.get("series"))
            .expect("series section present when requested");
        assert_eq!(
            series.get("schema").and_then(Json::as_str),
            Some("datareuse-series-v1")
        );
        let points = series
            .get("points")
            .and_then(Json::as_array)
            .expect("points array");
        assert!(!points.is_empty(), "scraper left at least one point");
        let derived = responses[1]
            .get("result")
            .and_then(|r| r.get("derived"))
            .expect("derived section");
        assert!(derived.get("coalesced_requests").is_some());
        assert!(
            derived
                .get("open_connections")
                .and_then(Json::as_u64)
                .is_some()
        );
        // The health envelope grades every check; a freshly started
        // server under default SLOs is `ok` across the board.
        let health = responses[2].get("result").expect("health result");
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        let checks = health.get("checks").expect("checks section");
        for name in ["latency", "hit_ratio", "queue"] {
            let check = checks.get(name).unwrap_or_else(|| panic!("{name} check"));
            assert!(check.get("status").and_then(Json::as_str).is_some());
        }
        handle.join().unwrap();
    }

    #[test]
    fn an_unmeetable_latency_slo_grades_failing() {
        // Latency histograms only record while metrics are on (the CLI
        // turns them on for `serve`; unit tests must opt in).
        datareuse_obs::set_metrics_enabled(true);
        let (addr, handle) = start(ServerConfig {
            threads: 1,
            slo: SloThresholds {
                p99_latency: Duration::ZERO,
                ..SloThresholds::default()
            },
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"ping","id":1}"#,
                r#"{"op":"health","id":2}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        let health = responses[1].get("result").expect("health result");
        // The ping above put at least one sample in the latency
        // histogram, and any positive p99 busts a zero-latency SLO.
        assert_eq!(health.get("status").and_then(Json::as_str), Some("failing"));
        assert_eq!(
            health
                .get("checks")
                .and_then(|c| c.get("latency"))
                .and_then(|l| l.get("status"))
                .and_then(Json::as_str),
            Some("failing")
        );
        handle.join().unwrap();
    }

    #[test]
    fn a_zero_deadline_times_out_with_a_structured_error() {
        let (addr, handle) = start(ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        });
        let responses = roundtrip(
            addr,
            &[
                r#"{"op":"report","kernel":"susan","deadline_ms":0,"id":"t"}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            responses[0]
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(E_TIMEOUT)
        );
        assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("t"));
        handle.join().unwrap();
    }

    #[test]
    fn the_hit_ratio_counts_coalesced_followers_as_cache_path() {
        // 0 hits, 3 coalesced, 1 cold miss: three of four cacheable
        // requests cost no compute, so the ratio is 0.75 — under the
        // pre-singleflight accounting (hits / (hits + misses)) the same
        // traffic would have read as 0.0 and tripped the health SLO.
        assert!((hit_ratio(0, 3, 1) - 0.75).abs() < 1e-12);
        assert!((hit_ratio(2, 0, 2) - 0.5).abs() < 1e-12);
        assert_eq!(hit_ratio(0, 0, 0), 0.0, "no probes, no ratio");
        assert_eq!(hit_ratio(5, 5, 0), 1.0);
    }

    #[test]
    fn a_snapshot_round_trip_survives_a_restart() {
        let path = std::env::temp_dir().join(format!(
            "datareuse-server-snap-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let config = ServerConfig {
            threads: 1,
            snapshot_path: Some(path.clone()),
            ..ServerConfig::default()
        };
        // First life: compute once (miss), then shut down — the drain
        // writes the snapshot.
        let (addr, handle) = start(config.clone());
        let first = roundtrip(
            addr,
            &[
                r#"{"op":"explore","kernel":"fir","id":1}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        assert_eq!(first[0].get("cached").and_then(Json::as_bool), Some(false));
        handle.join().unwrap();
        assert!(path.exists(), "drain wrote the snapshot");
        // Second life: the very first request is already a cache hit,
        // with byte-identical result content.
        let server = Server::bind(&config).unwrap();
        assert_eq!(
            server.snapshot_load_report(),
            Some(&Ok(Some(1))),
            "warm start restored the entry"
        );
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let second = roundtrip(
            addr,
            &[
                r#"{"op":"explore","kernel":"fir","id":1}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        assert_eq!(second[0].get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            first[0].get("result").map(Json::to_string),
            second[0].get("result").map(Json::to_string)
        );
        handle.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
