//! `datareuse-server` — a zero-dependency TCP serving layer over the
//! exploration engine.
//!
//! The paper's flow is batch: run the tool, read the report. This crate
//! turns the same analytical engine into a long-lived daemon speaking
//! newline-delimited JSON over TCP, so a design-space-exploration GUI,
//! a CI job, or a fleet of scripted clients can share one warm process
//! (and one result cache) instead of paying process startup and
//! recomputation per query.
//!
//! The pieces:
//!
//! - [`protocol`] — the NDJSON request/response grammar (including the
//!   `batch` op), request parsing, and the canonical FNV-1a cache key.
//! - [`ops`] — op execution shared with the CLI subcommands, which is
//!   what makes server responses byte-identical to one-shot runs.
//! - [`cache`] — the sharded LRU result cache.
//! - [`snapshot`] — versioned cache persistence (write-on-drain,
//!   load-on-start, checksum + schema gated).
//! - [`pool`] — the bounded worker pool (backpressure + drain).
//! - [`reactor`] — readiness primitives: a safe `poll(2)` wrapper and
//!   the cross-thread wake pipe.
//! - [`singleflight`] — coalescing of concurrent identical requests
//!   onto one computation.
//! - [`server`] — the event loops, deadlines, and graceful shutdown.
//! - [`client`] — a minimal blocking client (`datareuse query`).
//!
//! Everything is `std`-only, like the rest of the workspace. `unsafe`
//! is denied crate-wide with exactly one scoped exception: the
//! [`reactor`]'s FFI binding of `poll(2)` (the one readiness syscall
//! std does not expose), which is why this is `deny` and not `forbid`.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod ops;
pub mod pool;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod singleflight;
pub mod snapshot;

pub use cache::ResultCache;
pub use client::Client;
pub use ops::OpError;
pub use pool::WorkerPool;
pub use protocol::{cache_key, Request};
pub use server::{Server, ServerConfig, SloThresholds};
pub use singleflight::{JoinRole, SingleFlight};
