//! `datareuse-server` — a zero-dependency TCP serving layer over the
//! exploration engine.
//!
//! The paper's flow is batch: run the tool, read the report. This crate
//! turns the same analytical engine into a long-lived daemon speaking
//! newline-delimited JSON over TCP, so a design-space-exploration GUI,
//! a CI job, or a fleet of scripted clients can share one warm process
//! (and one result cache) instead of paying process startup and
//! recomputation per query.
//!
//! The pieces:
//!
//! - [`protocol`] — the NDJSON request/response grammar, request
//!   parsing, and the canonical FNV-1a cache key.
//! - [`ops`] — op execution shared with the CLI subcommands, which is
//!   what makes server responses byte-identical to one-shot runs.
//! - [`cache`] — the sharded LRU result cache.
//! - [`pool`] — the bounded worker pool (backpressure + drain).
//! - [`server`] — the accept loop, deadlines, and graceful shutdown.
//! - [`client`] — a minimal blocking client (`datareuse query`).
//!
//! Everything is `std`-only, like the rest of the workspace.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod ops;
pub mod pool;
pub mod protocol;
pub mod server;

pub use cache::ResultCache;
pub use client::Client;
pub use ops::OpError;
pub use pool::WorkerPool;
pub use protocol::{cache_key, Request};
pub use server::{Server, ServerConfig, SloThresholds};
