//! Versioned persistence for the result cache: write-on-drain,
//! load-on-start.
//!
//! A restarted server used to start cold: every previously-answered
//! exploration paid its compute again until the LRU refilled. With
//! `--cache-snapshot PATH` the server serializes the cache contents on
//! graceful drain and reloads them on the next start, so a fleet restart
//! (deploy, host move) keeps its working set warm.
//!
//! The file is one JSON document:
//!
//! ```text
//! { "schema":   "datareuse-cache-snapshot-v1",
//!   "entries":  [ { "key": "<16-hex canonical request hash>",
//!                   "value": "<serialized result document>" }, … ],
//!   "checksum": "<16-hex FNV-1a over the serialized entries array>" }
//! ```
//!
//! Two gates protect a warm start from bad state:
//!
//! - **Version gating** — the `schema` string must match exactly; a
//!   snapshot from an older (or newer) format is rejected rather than
//!   half-understood. Bump the suffix when the layout changes.
//! - **Checksum gating** — the FNV-1a of the re-serialized `entries`
//!   array must match the recorded value; torn writes and bit rot are
//!   rejected rather than served as answers.
//!
//! A rejected or missing snapshot is not fatal: the server logs why and
//! starts cold, exactly as if no snapshot existed. Keys are stored as
//! hex strings (not JSON numbers) so 64-bit hashes survive any numeric
//! round-trip exactly. LRU recency is deliberately *not* persisted: a
//! restored cache is fully resident and recency rebuilds with traffic.

use std::path::Path;
use std::sync::Arc;

use datareuse_obs::{add, span, Counter, Json};

use crate::cache::ResultCache;
use crate::protocol::fnv1a;

/// The exact schema string this build writes and accepts.
pub const SNAPSHOT_SCHEMA: &str = "datareuse-cache-snapshot-v1";

fn entries_json(entries: &[(u64, Arc<str>)]) -> Json {
    Json::arr(entries.iter().map(|(key, value)| {
        Json::obj([
            ("key", Json::str(format!("{key:016x}"))),
            ("value", Json::str(value.as_ref())),
        ])
    }))
}

/// Serializes every cache entry to `path` (via a temp file + rename, so
/// a crash mid-write leaves the previous snapshot intact). Returns the
/// number of entries written and records `serve_snapshot_saved`.
///
/// # Errors
///
/// When the file cannot be written or renamed.
pub fn save(cache: &ResultCache, path: &Path) -> Result<usize, String> {
    let _span = span("snapshot_save");
    let mut entries = cache.entries();
    entries.sort_by_key(|&(key, _)| key);
    let body = entries_json(&entries);
    let checksum = fnv1a(body.to_string().as_bytes());
    let doc = Json::obj([
        ("schema", Json::str(SNAPSHOT_SCHEMA)),
        ("entries", body),
        ("checksum", Json::str(format!("{checksum:016x}"))),
    ]);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format!("{doc}\n"))
        .map_err(|e| format!("cannot write snapshot `{}`: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot finalize snapshot `{}`: {e}", path.display()))?;
    add(Counter::ServeSnapshotSaved, entries.len() as u64);
    Ok(entries.len())
}

/// Loads `path` into `cache` after version and checksum gating. Returns
/// `Ok(None)` when no snapshot exists (a normal first start), the number
/// of entries restored otherwise, and records `serve_snapshot_loaded`.
///
/// # Errors
///
/// A human-readable rejection reason: unreadable file, unparseable
/// JSON, wrong schema version, checksum mismatch, or malformed entries.
/// On any rejection the cache is left untouched (cold).
pub fn load(cache: &ResultCache, path: &Path) -> Result<Option<usize>, String> {
    if !path.exists() {
        return Ok(None);
    }
    let _span = span("snapshot_load");
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read snapshot `{}`: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("snapshot is not valid JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("<missing>");
    if schema != SNAPSHOT_SCHEMA {
        return Err(format!(
            "snapshot schema `{schema}` does not match `{SNAPSHOT_SCHEMA}`"
        ));
    }
    let body = doc
        .get("entries")
        .ok_or_else(|| "snapshot has no `entries` array".to_string())?;
    let recorded = doc
        .get("checksum")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| "snapshot has no hex `checksum`".to_string())?;
    let actual = fnv1a(body.to_string().as_bytes());
    if actual != recorded {
        return Err(format!(
            "snapshot checksum mismatch (recorded {recorded:016x}, computed {actual:016x})"
        ));
    }
    let items = body
        .as_array()
        .ok_or_else(|| "snapshot `entries` is not an array".to_string())?;
    // Validate every entry before touching the cache, so a malformed
    // tail cannot leave a half-restored state.
    let mut restored: Vec<(u64, Arc<str>)> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let key = item
            .get("key")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| format!("snapshot entry {i} has no hex `key`"))?;
        let value = item
            .get("value")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("snapshot entry {i} has no string `value`"))?;
        restored.push((key, Arc::from(value)));
    }
    let count = restored.len();
    for (key, value) in restored {
        cache.insert(key, value);
    }
    add(Counter::ServeSnapshotLoaded, count as u64);
    Ok(Some(count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "datareuse-snap-{tag}-{}.json",
            std::process::id()
        ));
        p
    }

    #[test]
    fn round_trips_a_populated_cache() {
        let path = tmp_path("roundtrip");
        let cache = ResultCache::new(64);
        cache.insert(0xdead_beef, Arc::from(r#"{"x":1}"#));
        cache.insert(7, Arc::from(r#""quoted \"result\"""#));
        assert_eq!(save(&cache, &path).unwrap(), 2);
        let warm = ResultCache::new(64);
        assert_eq!(load(&warm, &path).unwrap(), Some(2));
        assert_eq!(warm.get(0xdead_beef).as_deref(), Some(r#"{"x":1}"#));
        assert_eq!(warm.get(7).as_deref(), Some(r#""quoted \"result\"""#));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_missing_snapshot_is_a_quiet_cold_start() {
        let cache = ResultCache::new(8);
        assert_eq!(
            load(&cache, Path::new("/nonexistent/dir/snap.json")).unwrap(),
            None
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn rejects_a_wrong_schema_version() {
        let path = tmp_path("version");
        std::fs::write(
            &path,
            r#"{"schema":"datareuse-cache-snapshot-v0","entries":[],"checksum":"0"}"#,
        )
        .unwrap();
        let cache = ResultCache::new(8);
        let err = load(&cache, &path).unwrap_err();
        assert!(err.contains("snapshot-v0"), "{err}");
        assert!(cache.is_empty(), "rejected snapshot must not touch the cache");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_a_corrupted_body() {
        let path = tmp_path("corrupt");
        let cache = ResultCache::new(8);
        cache.insert(1, Arc::from("\"one\""));
        save(&cache, &path).unwrap();
        // Flip one byte inside the entries body.
        let text = std::fs::read_to_string(&path).unwrap().replace("one", "two");
        std::fs::write(&path, text).unwrap();
        let warm = ResultCache::new(8);
        let err = load(&warm, &path).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(warm.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let path = tmp_path("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        let cache = ResultCache::new(8);
        assert!(load(&cache, &path).is_err());
        std::fs::write(&path, r#"{"schema":"datareuse-cache-snapshot-v1"}"#).unwrap();
        assert!(load(&cache, &path).unwrap_err().contains("entries"));
        let _ = std::fs::remove_file(&path);
    }
}
