//! Readiness primitives for the event loop: a thin safe wrapper over
//! `poll(2)` and a cross-thread wake pipe.
//!
//! The event loop watches thousands of nonblocking sockets at once; the
//! only piece the standard library does not provide is the readiness
//! syscall itself. Rather than pull in a dependency (this workspace is
//! std-only by construction), [`poll`] binds the libc `poll` symbol that
//! std already links on every Unix target and wraps it behind a safe
//! slice-based API. The `unsafe` is confined to the `sys` module — the only
//! `unsafe` in the workspace — and consists of one FFI call whose
//! contract (`repr(C)` array pointer + length) the wrapper upholds by
//! taking a live `&mut [PollFd]`.
//!
//! Workers finish jobs on their own threads while the loop may be parked
//! inside `poll` with a long timeout. [`WakePipe`] gives them a way to
//! interrupt it immediately: a loopback socket pair whose read end sits
//! in the poll set and whose write end ([`Waker`]) is shared with
//! completion callbacks. One byte written = one poll wakeup; the loop
//! drains the pipe and consumes whatever queues the byte advertised.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

/// Readable-data event bit (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable-space event bit (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition bit (`POLLERR`, only ever set in `revents`).
pub const POLLERR: i16 = 0x008;
/// Peer-hangup bit (`POLLHUP`, only ever set in `revents`).
pub const POLLHUP: i16 = 0x010;
/// Invalid-descriptor bit (`POLLNVAL`, only ever set in `revents`).
pub const POLLNVAL: i16 = 0x020;

/// One slot of a `poll(2)` set. Layout-identical to `struct pollfd` so
/// a `&mut [PollFd]` can be handed to the syscall directly.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT` ored together).
    pub events: i16,
    /// Returned events, written by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A slot watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the descriptor is readable — or in an error/hangup state,
    /// which a nonblocking read also surfaces (as 0 bytes or an error),
    /// so callers treat all three as "go read".
    pub fn readable(self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether the descriptor has write space (or an error to surface).
    pub fn writable(self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

mod sys {
    //! The workspace's single FFI site (see the crate-level lint note in
    //! `lib.rs`): `poll(2)` from the platform libc that std links anyway.
    #![allow(unsafe_code)]

    use super::PollFd;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub(super) fn poll_raw(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        // SAFETY: `PollFd` is `repr(C)` with the exact field order and
        // types of `struct pollfd`; the pointer and length come from a
        // live exclusive slice, so the kernel writes only into memory we
        // own for the duration of the call.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) }
    }
}

/// Waits until at least one slot in `fds` is ready or `timeout` elapses
/// (`None` = wait indefinitely). Returns the number of ready slots;
/// `Ok(0)` means the timeout fired. Sub-millisecond timeouts are rounded
/// *up* so a short deadline cannot degenerate into a zero-timeout spin.
///
/// # Errors
///
/// The underlying OS error, with `EINTR` retried internally.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms = match timeout {
        None => -1,
        Some(t) => {
            let ms = (t.as_micros() + 999) / 1000; // round up
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    };
    loop {
        let n = sys::poll_raw(fds, timeout_ms);
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
        // EINTR: retry with the full timeout; callers recompute their
        // deadlines every iteration so the worst case is a late wakeup.
    }
}

/// A self-wakeup channel for one event loop: a nonblocking loopback
/// socket pair. The read end lives in the loop's poll set; any number of
/// [`Waker`] clones write single bytes into the other end from worker
/// threads to interrupt a parked `poll`.
pub struct WakePipe {
    rx: TcpStream,
    tx: Arc<TcpStream>,
}

impl WakePipe {
    /// Builds the pair over an ephemeral loopback listener.
    ///
    /// # Errors
    ///
    /// When loopback sockets cannot be created (fd exhaustion, no
    /// loopback interface).
    pub fn new() -> io::Result<WakePipe> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let tx = TcpStream::connect(addr)?;
        let expect = tx.local_addr()?;
        // Accept until we see our own connect: a foreign process racing
        // SYNs at the ephemeral port must not become the wake source.
        let rx = loop {
            let (stream, peer) = listener.accept()?;
            if peer == expect {
                break stream;
            }
        };
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        Ok(WakePipe {
            rx,
            tx: Arc::new(tx),
        })
    }

    /// The descriptor to register with `POLLIN` in the poll set.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// A cloneable handle for waking this pipe's owner.
    pub fn waker(&self) -> Waker {
        Waker {
            tx: Arc::clone(&self.tx),
        }
    }

    /// Consumes every pending wake byte. Called once per loop iteration
    /// after `poll` reports the read end readable; many wakes coalesce
    /// into one drain.
    pub fn drain(&self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => return, // writer gone; nothing to drain
                Ok(_) => {}      // keep reading until the buffer is dry
                Err(_) => return, // WouldBlock or real error: done
            }
        }
    }
}

/// The write end of a [`WakePipe`]; cheap to clone into completion
/// callbacks. Waking is best-effort and never blocks: if the socket
/// buffer is full, a wakeup is already pending and the byte is moot.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<TcpStream>,
}

impl Waker {
    /// Interrupts the owning loop's `poll` (or makes its next `poll`
    /// return immediately).
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn poll_times_out_on_a_quiet_socket() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let start = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "no readiness without a wake");
        assert!(start.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn a_wake_interrupts_poll_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            waker.wake();
        });
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        pipe.drain();
        // Drained: the next short poll sees silence again.
        fds[0].revents = 0;
        let n = poll(&mut fds, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0, "drain consumed the wake byte");
        handle.join().unwrap();
    }

    #[test]
    fn many_wakes_coalesce_into_one_drain() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        for _ in 0..1000 {
            waker.wake();
        }
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Some(Duration::from_secs(1))).unwrap(), 1);
        // Loopback TCP may still have bytes in transit after the first
        // drain; poll-and-drain converges in a bounded number of rounds.
        for _ in 0..100 {
            pipe.drain();
            fds[0].revents = 0;
            if poll(&mut fds, Some(Duration::from_millis(5))).unwrap() == 0 {
                return;
            }
        }
        panic!("wake pipe never went quiet after draining");
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_down() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        // 100µs must become a 1ms poll, not a 0ms busy-return; either
        // way it returns 0 ready fds, but it must not error.
        let n = poll(&mut fds, Some(Duration::from_micros(100))).unwrap();
        assert_eq!(n, 0);
    }
}
