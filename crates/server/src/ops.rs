//! Execution of the serving operations.
//!
//! One op = one pure function from a request body to a JSON result.
//! The CLI's one-shot subcommands route through the same entry points
//! (`datareuse explore --json` and the server's `explore` call the same
//! report builder on the same registry-loaded kernel), which is what
//! makes the integration-test guarantee — *server responses are
//! byte-identical to the equivalent CLI invocation* — hold by
//! construction instead of by parallel maintenance.

use datareuse_codegen::{
    emit_band_copy, emit_selfcheck, emit_selfcheck_adopt, emit_selfcheck_band, emit_transformed,
    emit_transformed_adopt, TemplateOptions,
};
use datareuse_core::{explore_program, explore_signal, ExplorationReport, ExploreOptions};
use datareuse_kernels::load_kernel;
use datareuse_loopir::{AccessKind, Program};
use datareuse_memmodel::{BitCount, MemoryLibrary, MemoryTechnology};
use datareuse_obs::Json;

use crate::protocol::{
    CodegenParams, CodegenSpec, ExploreParams, Op, ParetoParams, E_BAD_REQUEST, E_INTERNAL,
};

/// A failed op: a protocol error code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpError {
    /// One of the `E_*` protocol codes.
    pub code: &'static str,
    /// What went wrong.
    pub message: String,
}

impl OpError {
    fn bad(message: impl Into<String>) -> Self {
        Self {
            code: E_BAD_REQUEST,
            message: message.into(),
        }
    }
}

/// The most-read array of a program — the default signal when a request
/// names none (the same heuristic the CLI has always used).
pub fn default_array(program: &Program) -> Option<String> {
    let mut best: Option<(String, u64)> = None;
    for decl in program.arrays() {
        let reads = datareuse_loopir::trace_len(
            program,
            decl.name(),
            datareuse_loopir::TraceFilter::READS,
        );
        if reads > 0 && best.as_ref().is_none_or(|(_, r)| reads > *r) {
            best = Some((decl.name().to_string(), reads));
        }
    }
    best.map(|(n, _)| n)
}

fn resolve(kernel: &str, array: Option<&str>) -> Result<(Program, String), OpError> {
    let program = load_kernel(kernel).map_err(OpError::bad)?;
    let array = match array {
        Some(a) => a.to_string(),
        None => default_array(&program)
            .ok_or_else(|| OpError::bad("program has no read accesses"))?,
    };
    Ok((program, array))
}

fn options(depth: Option<usize>) -> ExploreOptions {
    let mut opts = ExploreOptions::default();
    if let Some(d) = depth {
        opts.max_chain_depth = d;
    }
    opts
}

/// Runs `explore`: the pairwise reuse sweep and Pareto report for one
/// signal, exactly as `datareuse explore <kernel> --json` prints it.
pub fn explore(params: &ExploreParams) -> Result<Json, OpError> {
    let (program, array) = resolve(&params.kernel, params.array.as_deref())?;
    let opts = options(params.depth);
    let ex = explore_signal(&program, &array, &opts)
        .map_err(|e| OpError::bad(e.to_string()))?;
    let report =
        ExplorationReport::build(&ex, &opts, &MemoryTechnology::new(), &BitCount);
    Json::parse(&report.to_json()).map_err(|e| OpError {
        code: E_INTERNAL,
        message: format!("report serialization failed: {e}"),
    })
}

/// Runs `report`: one explore document per read signal of the program,
/// exactly as `datareuse report <kernel> --json` prints it.
pub fn report(kernel: &str) -> Result<Json, OpError> {
    let program = load_kernel(kernel).map_err(OpError::bad)?;
    let opts = ExploreOptions::default();
    let tech = MemoryTechnology::new();
    let explorations =
        explore_program(&program, &opts).map_err(|e| OpError::bad(e.to_string()))?;
    let docs = explorations
        .iter()
        .map(|ex| {
            Json::parse(&ExplorationReport::build(ex, &opts, &tech, &BitCount).to_json())
                .map_err(|e| OpError {
                    code: E_INTERNAL,
                    message: format!("report serialization failed: {e}"),
                })
        })
        .collect::<Result<Vec<Json>, OpError>>()?;
    Ok(Json::Arr(docs))
}

/// Runs `pareto`: enumerates and costs the copy-candidate chains of one
/// signal and returns the power–size Pareto front; with a `library`, each
/// front hierarchy is additionally collapsed onto the physical sizes
/// (`datareuse_memmodel::MemoryLibrary::collapse`).
pub fn pareto(params: &ParetoParams) -> Result<Json, OpError> {
    let (program, array) = resolve(&params.kernel, params.array.as_deref())?;
    let opts = options(params.depth);
    let ex = explore_signal(&program, &array, &opts)
        .map_err(|e| OpError::bad(e.to_string()))?;
    let library = params
        .library
        .as_ref()
        .map(|sizes| MemoryLibrary::new(sizes.iter().copied()));
    let front = ex.pareto(&opts, &MemoryTechnology::new(), &BitCount);
    let points = front
        .iter()
        .map(|p| {
            let (chain, cost) = &p.payload;
            let virtual_sizes: Vec<u64> = chain.levels.iter().map(|l| l.words).collect();
            let mut row = vec![
                (
                    "level_sizes".to_string(),
                    Json::arr(virtual_sizes.iter().map(|&w| Json::UInt(w))),
                ),
                ("onchip_words".to_string(), Json::UInt(cost.onchip_words)),
                ("power".to_string(), Json::Num(cost.normalized_energy)),
            ];
            if let Some(lib) = &library {
                row.push((
                    "physical".to_string(),
                    Json::arr(
                        lib.collapse(&virtual_sizes)
                            .into_iter()
                            .map(|(size, _)| Json::UInt(size)),
                    ),
                ));
            }
            Json::Obj(row)
        })
        .collect::<Vec<Json>>();
    let mut doc = vec![
        ("array".to_string(), Json::str(array)),
        ("c_tot".to_string(), Json::UInt(ex.c_tot)),
        (
            "background_words".to_string(),
            Json::UInt(ex.background_words),
        ),
        ("points".to_string(), Json::Arr(points)),
    ];
    if let Some(lib) = &library {
        doc.insert(
            3,
            (
                "library".to_string(),
                Json::arr(lib.sizes().iter().map(|&s| Json::UInt(s))),
            ),
        );
    }
    Ok(Json::Obj(doc))
}

/// Emits the Fig. 8 template for `array` in `program` under `spec` —
/// the single code path behind both `datareuse codegen` and the server's
/// `codegen` op.
pub fn codegen_text(
    program: &Program,
    array: &str,
    spec: &CodegenSpec,
) -> Result<String, String> {
    let (nest_idx, access_idx) = program
        .nests()
        .iter()
        .enumerate()
        .find_map(|(ni, nest)| {
            nest.accesses()
                .iter()
                .position(|a| a.array() == array && a.kind() == AccessKind::Read)
                .map(|ai| (ni, ai))
        })
        .ok_or_else(|| format!("no read access to `{array}`"))?;
    let depth = program.nests()[nest_idx].depth();
    let (outer, inner) = spec
        .pair
        .unwrap_or((depth.saturating_sub(2), depth.saturating_sub(1)));
    let opts = TemplateOptions {
        strategy: spec.strategy,
        single_assignment: spec.single_assignment,
    };
    if let Some(band_depth) = spec.band {
        return if spec.selfcheck {
            emit_selfcheck_band(program, nest_idx, access_idx, band_depth)
        } else {
            emit_band_copy(program, nest_idx, access_idx, band_depth)
        }
        .map_err(|e| e.to_string());
    }
    match (spec.selfcheck, spec.adopt) {
        (true, false) => emit_selfcheck(program, nest_idx, access_idx, outer, inner, opts),
        (true, true) => emit_selfcheck_adopt(program, nest_idx, access_idx, outer, inner, opts),
        (false, true) => emit_transformed_adopt(program, nest_idx, access_idx, outer, inner, opts),
        (false, false) => emit_transformed(program, nest_idx, access_idx, outer, inner, opts),
    }
    .map_err(|e| e.to_string())
}

/// Runs `codegen` for a request: resolves the kernel and array, emits
/// the template, and wraps it as `{"code": "..."}`.
pub fn codegen(params: &CodegenParams) -> Result<Json, OpError> {
    let (program, array) = resolve(&params.kernel, params.array.as_deref())?;
    let code = codegen_text(&program, &array, &params.spec).map_err(OpError::bad)?;
    Ok(Json::obj([("code", Json::Str(code))]))
}

/// Executes a work op (not the control/introspection ops, which the
/// server answers inline) into its `result` document.
pub fn execute(op: &Op) -> Result<Json, OpError> {
    match op {
        Op::Explore(params) => explore(params),
        Op::Pareto(params) => pareto(params),
        Op::Report { kernel } => report(kernel),
        Op::Codegen(params) => codegen(params),
        // `batch` is unpacked by the serving loop before dispatch; like
        // the control ops it must never reach a worker whole.
        Op::Stats { .. }
        | Op::Health
        | Op::Trace
        | Op::Prom
        | Op::Profile
        | Op::Memstats
        | Op::Ping
        | Op::Shutdown
        | Op::Batch(_) => Err(OpError {
            code: E_INTERNAL,
            message: "control op reached the worker pool".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_matches_the_report_builder_byte_for_byte() {
        let params = ExploreParams {
            kernel: "me-small".into(),
            array: Some("Old".into()),
            depth: None,
        };
        let via_op = explore(&params).unwrap().to_string();
        let program = load_kernel("me-small").unwrap();
        let opts = ExploreOptions::default();
        let ex = explore_signal(&program, "Old", &opts).unwrap();
        let direct =
            ExplorationReport::build(&ex, &opts, &MemoryTechnology::new(), &BitCount).to_json();
        assert_eq!(via_op, direct);
    }

    #[test]
    fn default_array_resolution_matches_the_cli_heuristic() {
        let program = load_kernel("conv2d").unwrap();
        let pick = default_array(&program).unwrap();
        assert!(pick == "image" || pick == "coef", "picked {pick}");
    }

    #[test]
    fn pareto_reports_points_and_collapses_onto_a_library() {
        let params = ParetoParams {
            kernel: "fir".into(),
            array: None,
            depth: None,
            library: Some(vec![16, 64, 256, 1024]),
        };
        let doc = pareto(&params).unwrap();
        let points = doc.get("points").and_then(Json::as_array).unwrap();
        assert!(!points.is_empty());
        for p in points {
            assert!(p.get("power").and_then(Json::as_f64).is_some());
            assert!(p.get("physical").is_some(), "library collapse present");
        }
        assert_eq!(
            doc.get("library").and_then(Json::as_array).map(<[Json]>::len),
            Some(4)
        );
    }

    #[test]
    fn unknown_kernels_and_arrays_are_bad_requests() {
        let e = explore(&ExploreParams {
            kernel: "/no/such.dr".into(),
            array: None,
            depth: None,
        })
        .unwrap_err();
        assert_eq!(e.code, E_BAD_REQUEST);
        let e = explore(&ExploreParams {
            kernel: "fir".into(),
            array: Some("nope".into()),
            depth: None,
        })
        .unwrap_err();
        assert_eq!(e.code, E_BAD_REQUEST);
    }

    #[test]
    fn codegen_emits_the_template_through_the_shared_path() {
        let doc = codegen(&CodegenParams {
            kernel: "me-small".into(),
            array: Some("Old".into()),
            spec: CodegenSpec {
                pair: Some((3, 5)),
                strategy: crate::protocol::parse_strategy(Some("bypass:2")).unwrap(),
                ..CodegenSpec::default()
            },
        })
        .unwrap();
        let code = doc.get("code").and_then(Json::as_str).unwrap();
        assert!(code.contains("Old_sub"));
        assert!(code.contains("bypass"));
    }
}
