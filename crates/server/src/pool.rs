//! Fixed worker pool with a bounded queue and drain-on-shutdown.
//!
//! The serving path deliberately separates I/O from compute: connection
//! threads (one per client, blocked on reads most of their life) parse
//! requests and write responses, while the CPU-bound exploration work
//! runs on this fixed pool. The queue between them is **bounded** —
//! when `queue_depth` jobs are already waiting, [`WorkerPool::try_submit`]
//! refuses immediately and the caller answers the client with a
//! structured `overloaded` error. Backpressure at the edge beats an
//! unbounded queue that converts overload into unbounded memory growth
//! and minutes-stale responses.
//!
//! [`WorkerPool::drain`] implements the graceful half of shutdown:
//! submissions stop, every job already accepted still runs, and the
//! workers are joined.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

use datareuse_obs::{gauge_add, gauge_max, gauge_sub, Gauge};

/// A unit of queued work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    draining: AtomicBool,
}

/// Fixed-size worker pool over a bounded FIFO queue.
pub struct WorkerPool {
    queue: std::sync::Arc<Queue>,
    capacity: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least 1) over a queue holding at
    /// most `queue_depth` waiting jobs (at least 1).
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        let queue = std::sync::Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            draining: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let queue = std::sync::Arc::clone(&queue);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut jobs = queue.jobs.lock().expect("job queue poisoned");
                        loop {
                            if let Some(job) = jobs.pop_front() {
                                // The depth gauge tracks *waiting* jobs:
                                // decremented the moment a worker takes
                                // one, not when it finishes.
                                gauge_sub(Gauge::ServeQueueDepth, 1);
                                break Some(job);
                            }
                            if queue.draining.load(Ordering::Acquire) {
                                break None;
                            }
                            jobs = queue.ready.wait(jobs).expect("job queue poisoned");
                        }
                    };
                    match job {
                        Some(job) => job(),
                        None => return,
                    }
                })
            })
            .collect();
        Self {
            queue,
            capacity: queue_depth.max(1),
            workers: Mutex::new(workers),
        }
    }

    /// Enqueues `job` unless the queue is full or the pool is draining.
    ///
    /// # Errors
    ///
    /// Returns the job back on refusal so the caller can report
    /// `overloaded` (or `shutting_down`) without having lost it.
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        if self.queue.draining.load(Ordering::Acquire) {
            return Err(job);
        }
        let mut jobs = self.queue.jobs.lock().expect("job queue poisoned");
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        // Recorded under the lock: the matching decrement also runs
        // under it (in the worker's pop), so increments can never be
        // overtaken by their own decrement and the gauge cannot drift.
        gauge_add(Gauge::ServeQueueDepth, 1);
        gauge_max(Gauge::ServeQueueDepthMax, jobs.len() as u64);
        drop(jobs);
        self.queue.ready.notify_one();
        Ok(())
    }

    /// Number of jobs waiting (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.queue.jobs.lock().expect("job queue poisoned").len()
    }

    /// Stops accepting work, lets the workers finish everything already
    /// queued, and joins them. Idempotent.
    pub fn drain(&self) {
        self.queue.draining.store(true, Ordering::Release);
        self.queue.ready.notify_all();
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("worker registry poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(4, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap_or_else(|_| panic!("queue has room"));
        }
        pool.drain();
        assert_eq!(done.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn rejects_when_the_queue_is_full() {
        // One worker, blocked; queue depth 1: the first extra job queues,
        // the second is refused — the structured-overload path.
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            let _ = block_rx.recv_timeout(Duration::from_secs(10));
        }))
        .unwrap_or_else(|_| panic!("first job accepted"));
        // Wait until the worker has taken the blocking job off the queue.
        for _ in 0..200 {
            if pool.queued() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        pool.try_submit(Box::new(|| {}))
            .unwrap_or_else(|_| panic!("queue slot accepted"));
        assert!(pool.try_submit(Box::new(|| {})).is_err(), "overload rejected");
        block_tx.send(()).unwrap();
        pool.drain();
    }

    #[test]
    fn drain_completes_queued_work_and_refuses_new_work() {
        let pool = WorkerPool::new(2, 32);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(1));
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap_or_else(|_| panic!("queue has room"));
        }
        pool.drain();
        assert_eq!(done.load(Ordering::SeqCst), 8, "in-flight work drained");
        assert!(pool.try_submit(Box::new(|| {})).is_err(), "post-drain refused");
        pool.drain(); // idempotent
    }
}
