//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request is one line of JSON (parsed with the workspace's
//! [`Json`] reader, so the same depth limit and error reporting apply to
//! network bytes as to every other artifact). The grammar:
//!
//! ```text
//! request  = { "op": <op>, <op params>…,
//!              "id"?: <any json>, "deadline_ms"?: uint }
//! op       = "explore" | "pareto" | "report" | "codegen" | "batch"
//!          | "stats" | "health" | "trace" | "prom" | "ping" | "shutdown"
//!          | "profile" | "memstats"
//! response = { "ok": true,  "id"?: <echoed>, "cached": bool,
//!              "coalesced"?: true, "result": <json> }
//!          | { "ok": false, "id"?: <echoed>,
//!              "error": { "code": <code>, "message": string,
//!                         "flight"?: [<flight event>…] } }
//! code     = "bad_request" | "overloaded" | "timeout"
//!          | "shutting_down" | "internal"
//! ```
//!
//! `batch` carries `"requests": [<request>…]` — up to [`MAX_BATCH`]
//! sub-requests executed under the *parent's* deadline (per-item
//! `deadline_ms` is ignored) and answered as one frame whose result is
//! `{"responses": [<full response envelope>…]}` in request order. Any
//! op except `shutdown` and a nested `batch` may appear inside.
//! `coalesced: true` marks a response whose computation was shared with
//! an identical concurrent request (singleflight follower) rather than
//! run or cached for this request alone; it only ever appears alongside
//! `cached: false`.
//!
//! `timeout` and `overloaded` errors attach the flight-recorder tail
//! (the last ~32 structured serving events) under `error.flight` so a
//! refusal can be debugged after the fact. `stats` accepts an optional
//! `"flight": true` to include the full recorder tail and an optional
//! `"series": true` to include the scraped metrics time-series ring;
//! `health` evaluates the server's SLO thresholds into
//! `ok`/`degraded`/`failing`; `trace` drains buffered spans as a Chrome
//! trace-event document; `prom` returns the Prometheus text exposition
//! as a JSON string; `profile` returns the span-derived self-time
//! profile as a `datareuse-profile-v1` document; `memstats` returns the
//! tracking allocator's tallies plus the serve-side attribution
//! breakdown as a `datareuse-memstats-v1` document.
//!
//! `id` is echoed back verbatim and `deadline_ms` bounds how long the
//! client is willing to wait; neither participates in the cache key —
//! two requests that differ only in `id`/`deadline_ms` are the same
//! computation (see [`cache_key`]).

use datareuse_codegen::Strategy;
use datareuse_obs::Json;

/// Error code for a request the server could not parse or validate.
pub const E_BAD_REQUEST: &str = "bad_request";
/// Error code for a request rejected because the bounded queue is full.
pub const E_OVERLOADED: &str = "overloaded";
/// Error code for a request whose deadline expired before completion.
pub const E_TIMEOUT: &str = "timeout";
/// Error code for work refused because the server is draining.
pub const E_SHUTTING_DOWN: &str = "shutting_down";
/// Error code for an unexpected server-side failure.
pub const E_INTERNAL: &str = "internal";

/// Most sub-requests one `batch` frame may carry.
pub const MAX_BATCH: usize = 256;

/// Every wire op name, in grammar order (the same order as
/// [`op_ordinal`](crate::server) flight details). The doc-drift test
/// checks each against `docs/SERVING.md`.
pub const OP_NAMES: [&str; 13] = [
    "explore", "pareto", "report", "codegen", "stats", "trace", "prom", "ping", "shutdown",
    "health", "batch", "profile", "memstats",
];

/// Parameters of an `explore` request (one signal, full sweep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreParams {
    /// Kernel name or `.dr` path (resolved by the kernel registry).
    pub kernel: String,
    /// Signal to explore; defaults to the most-read array.
    pub array: Option<String>,
    /// Overrides `ExploreOptions::max_chain_depth`.
    pub depth: Option<usize>,
}

/// Parameters of a `pareto` request (chain evaluation, optionally
/// collapsed onto a predefined memory library).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParetoParams {
    /// Kernel name or `.dr` path.
    pub kernel: String,
    /// Signal to explore; defaults to the most-read array.
    pub array: Option<String>,
    /// Overrides `ExploreOptions::max_chain_depth`.
    pub depth: Option<usize>,
    /// Physical memory sizes to collapse each virtual chain onto
    /// (`datareuse_memmodel::MemoryLibrary`); omitted = custom hierarchy.
    pub library: Option<Vec<u64>>,
}

/// Parameters of a `codegen` request (Fig. 8 template emission).
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenParams {
    /// Kernel name or `.dr` path.
    pub kernel: String,
    /// Signal to buffer; defaults to the most-read array.
    pub array: Option<String>,
    /// The shared emission options (also used by the CLI `codegen`).
    pub spec: CodegenSpec,
}

/// Everything `codegen` needs beyond the program and the array — shared
/// between the CLI subcommand and the server op so both emit identical
/// code for identical inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenSpec {
    /// `(outer, inner)` loop pair; defaults to the innermost pair.
    pub pair: Option<(usize, usize)>,
    /// Copy strategy (max / partial:G / bypass:G).
    pub strategy: Strategy,
    /// Emit the self-checking driver around the template.
    pub selfcheck: bool,
    /// Adopt the copy loop into the original nest.
    pub adopt: bool,
    /// Emit the single-assignment template variant.
    pub single_assignment: bool,
    /// Emit a band copy of this depth instead of the pair template.
    pub band: Option<usize>,
}

impl Default for CodegenSpec {
    fn default() -> Self {
        Self {
            pair: None,
            strategy: Strategy::MaxReuse,
            selfcheck: false,
            adopt: false,
            single_assignment: false,
            band: None,
        }
    }
}

/// Parses the CLI/protocol strategy string (`max`, `partial:G`,
/// `bypass:G`) into a [`Strategy`].
pub fn parse_strategy(text: Option<&str>) -> Result<Strategy, String> {
    match text {
        None | Some("max") => Ok(Strategy::MaxReuse),
        Some(s) => {
            if let Some(g) = s.strip_prefix("partial:") {
                Ok(Strategy::Partial {
                    gamma: g.parse().map_err(|_| "bad gamma".to_string())?,
                })
            } else if let Some(g) = s.strip_prefix("bypass:") {
                Ok(Strategy::PartialBypass {
                    gamma: g.parse().map_err(|_| "bad gamma".to_string())?,
                })
            } else {
                Err(format!("unknown strategy `{s}`"))
            }
        }
    }
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Pairwise reuse sweep + Pareto report for one signal.
    Explore(ExploreParams),
    /// Chain enumeration / library collapse for one signal.
    Pareto(ParetoParams),
    /// Full-program report over every read signal.
    Report {
        /// Kernel name or `.dr` path.
        kernel: String,
    },
    /// Fig. 8 template emission.
    Codegen(CodegenParams),
    /// Live `datareuse-metrics-v2` snapshot (counters include the
    /// serve/cache traffic, histograms the latency distributions).
    Stats {
        /// Include the full flight-recorder tail in the response.
        flight: bool,
        /// Include the scraped metrics time-series ring in the response.
        series: bool,
    },
    /// SLO evaluation: `ok` / `degraded` / `failing` with per-check
    /// detail (p99 latency, cache hit ratio, queue saturation).
    Health,
    /// Drain buffered trace spans as Chrome trace-event JSON.
    Trace,
    /// Prometheus text-format scrape of the metrics registry.
    Prom,
    /// Span-derived self-time profile (`datareuse-profile-v1`).
    Profile,
    /// Tracking-allocator tallies plus serve-side allocation
    /// attribution (`datareuse-memstats-v1`).
    Memstats,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: stop accepting, drain in-flight work, exit.
    Shutdown,
    /// Several requests in one frame, answered as one frame. Amortizes
    /// framing and syscalls; sub-requests still hit the cache and
    /// coalesce individually.
    Batch(Vec<Request>),
}

impl Op {
    /// Whether results of this op are cacheable (pure functions of the
    /// request body). Control/introspection ops are not.
    pub fn cacheable(&self) -> bool {
        !matches!(
            self,
            Op::Stats { .. }
                | Op::Health
                | Op::Trace
                | Op::Prom
                | Op::Profile
                | Op::Memstats
                | Op::Ping
                | Op::Shutdown
                | Op::Batch(_)
        )
    }

    /// Stable lowercase tag (the wire `op` string), used as span detail
    /// and flight-recorder payload.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Explore(_) => "explore",
            Op::Pareto(_) => "pareto",
            Op::Report { .. } => "report",
            Op::Codegen(_) => "codegen",
            Op::Stats { .. } => "stats",
            Op::Health => "health",
            Op::Trace => "trace",
            Op::Prom => "prom",
            Op::Profile => "profile",
            Op::Memstats => "memstats",
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
            Op::Batch(_) => "batch",
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed back verbatim.
    pub id: Option<Json>,
    /// Deadline in milliseconds from receipt; `None` = server default.
    pub deadline_ms: Option<u64>,
    /// The requested operation.
    pub op: Op,
    /// Canonical FNV-1a hash of the semantic request body (excludes
    /// `id` and `deadline_ms`); `None` for non-cacheable ops.
    pub cache_key: Option<u64>,
}

fn get_str(v: &Json, key: &str) -> Option<String> {
    v.get(key).and_then(Json::as_str).map(str::to_string)
}

fn get_usize(v: &Json, key: &str, what: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("`{what}` must be an unsigned integer")),
    }
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(j) => j
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn require_kernel(v: &Json) -> Result<String, String> {
    get_str(v, "kernel").ok_or_else(|| "missing `kernel` (string)".to_string())
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message suitable for a `bad_request` response:
    /// malformed JSON, a non-object document, a missing or unknown `op`,
    /// or ill-typed parameters.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        Request::from_json(&doc)
    }

    /// Parses an already-decoded request document.
    ///
    /// # Errors
    ///
    /// See [`Request::parse_line`].
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        if doc.entries().is_none() {
            return Err("request must be a JSON object".to_string());
        }
        let op_name = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `op` (string)".to_string())?;
        let deadline_ms = match doc.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(j) => Some(
                j.as_u64()
                    .ok_or_else(|| "`deadline_ms` must be an unsigned integer".to_string())?,
            ),
        };
        let op = match op_name {
            "explore" => Op::Explore(ExploreParams {
                kernel: require_kernel(doc)?,
                array: get_str(doc, "array"),
                depth: get_usize(doc, "depth", "depth")?,
            }),
            "pareto" => {
                let library = match doc.get("library") {
                    None | Some(Json::Null) => None,
                    Some(j) => {
                        let items = j
                            .as_array()
                            .ok_or_else(|| "`library` must be an array of sizes".to_string())?;
                        Some(
                            items
                                .iter()
                                .map(|s| {
                                    s.as_u64().ok_or_else(|| {
                                        "`library` sizes must be unsigned integers".to_string()
                                    })
                                })
                                .collect::<Result<Vec<u64>, String>>()?,
                        )
                    }
                };
                Op::Pareto(ParetoParams {
                    kernel: require_kernel(doc)?,
                    array: get_str(doc, "array"),
                    depth: get_usize(doc, "depth", "depth")?,
                    library,
                })
            }
            "report" => Op::Report {
                kernel: require_kernel(doc)?,
            },
            "codegen" => {
                let pair = match doc.get("pair") {
                    None | Some(Json::Null) => None,
                    Some(j) => {
                        let items = j.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                            "`pair` must be a two-element array [outer, inner]".to_string()
                        })?;
                        let outer = items[0]
                            .as_u64()
                            .ok_or_else(|| "`pair` entries must be unsigned".to_string())?;
                        let inner = items[1]
                            .as_u64()
                            .ok_or_else(|| "`pair` entries must be unsigned".to_string())?;
                        Some((outer as usize, inner as usize))
                    }
                };
                Op::Codegen(CodegenParams {
                    kernel: require_kernel(doc)?,
                    array: get_str(doc, "array"),
                    spec: CodegenSpec {
                        pair,
                        strategy: parse_strategy(
                            doc.get("strategy").and_then(Json::as_str),
                        )?,
                        selfcheck: get_bool(doc, "selfcheck")?,
                        adopt: get_bool(doc, "adopt")?,
                        single_assignment: get_bool(doc, "single_assignment")?,
                        band: get_usize(doc, "band", "band")?,
                    },
                })
            }
            "stats" => Op::Stats {
                flight: get_bool(doc, "flight")?,
                series: get_bool(doc, "series")?,
            },
            "health" => Op::Health,
            "trace" => Op::Trace,
            "prom" => Op::Prom,
            "profile" => Op::Profile,
            "memstats" => Op::Memstats,
            "ping" => Op::Ping,
            "shutdown" => Op::Shutdown,
            "batch" => {
                let items = doc
                    .get("requests")
                    .and_then(Json::as_array)
                    .ok_or_else(|| "`batch` needs a `requests` array".to_string())?;
                if items.is_empty() {
                    return Err("`batch` requests array is empty".to_string());
                }
                if items.len() > MAX_BATCH {
                    return Err(format!(
                        "`batch` carries {} requests; the limit is {MAX_BATCH}",
                        items.len()
                    ));
                }
                let mut requests = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let sub = Request::from_json(item)
                        .map_err(|e| format!("batch request {i}: {e}"))?;
                    match sub.op {
                        Op::Shutdown => {
                            return Err(format!(
                                "batch request {i}: `shutdown` cannot ride in a batch"
                            ))
                        }
                        Op::Batch(_) => {
                            return Err(format!("batch request {i}: batches do not nest"))
                        }
                        _ => requests.push(sub),
                    }
                }
                Op::Batch(requests)
            }
            other => return Err(format!("unknown op `{other}`")),
        };
        let cache_key = op.cacheable().then(|| cache_key(doc));
        Ok(Request {
            id: doc.get("id").cloned(),
            deadline_ms,
            op,
            cache_key,
        })
    }
}

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Recursively sorts object keys so semantically identical documents
/// serialize identically (the writer preserves insertion order).
fn canonicalize(v: &Json) -> Json {
    match v {
        Json::Arr(items) => Json::Arr(items.iter().map(canonicalize).collect()),
        Json::Obj(entries) => {
            let mut sorted: Vec<(String, Json)> = entries
                .iter()
                .map(|(k, val)| (k.clone(), canonicalize(val)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Obj(sorted)
        }
        other => other.clone(),
    }
}

/// The canonical cache key of a request document: FNV-1a over the
/// canonical (key-sorted) serialization with the non-semantic fields
/// `id` and `deadline_ms` removed.
///
/// Two requests that describe the same computation — same op and
/// parameters, any key order, any correlation id, any deadline — hash
/// identically; any semantic difference changes the serialization and
/// therefore (up to 64-bit collisions) the key.
pub fn cache_key(request: &Json) -> u64 {
    let semantic = match request {
        Json::Obj(entries) => Json::Obj(
            entries
                .iter()
                .filter(|(k, _)| k != "id" && k != "deadline_ms")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        ),
        other => other.clone(),
    };
    fnv1a(canonicalize(&semantic).to_string().as_bytes())
}

/// Builds a success envelope. `result_raw` is spliced in verbatim — it
/// must already be serialized JSON (this is what lets cache hits reuse
/// the stored bytes without reparsing).
pub fn ok_envelope(id: Option<&Json>, cached: bool, result_raw: &str) -> String {
    ok_envelope_coalesced(id, cached, false, result_raw)
}

/// [`ok_envelope`] with the singleflight marker: `coalesced: true` is
/// emitted only when set, so non-coalesced responses keep their exact
/// historical byte layout.
pub fn ok_envelope_coalesced(
    id: Option<&Json>,
    cached: bool,
    coalesced: bool,
    result_raw: &str,
) -> String {
    let mut out = String::with_capacity(result_raw.len() + 64);
    out.push_str("{\"ok\":true");
    if let Some(id) = id {
        out.push_str(",\"id\":");
        out.push_str(&id.to_string());
    }
    out.push_str(",\"cached\":");
    out.push_str(if cached { "true" } else { "false" });
    if coalesced {
        out.push_str(",\"coalesced\":true");
    }
    out.push_str(",\"result\":");
    out.push_str(result_raw);
    out.push('}');
    out
}

/// Builds an error envelope with a structured `code` and message.
pub fn err_envelope(id: Option<&Json>, code: &str, message: &str) -> String {
    err_envelope_with_flight(id, code, message, None)
}

/// Like [`err_envelope`], optionally attaching a flight-recorder tail
/// (a JSON array of events) under `error.flight` — used for `timeout`
/// and `overloaded` responses so the refusal's context survives.
pub fn err_envelope_with_flight(
    id: Option<&Json>,
    code: &str,
    message: &str,
    flight: Option<Json>,
) -> String {
    let mut obj = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(id) = id {
        obj.push(("id".to_string(), id.clone()));
    }
    let mut error = vec![
        ("code".to_string(), Json::str(code)),
        ("message".to_string(), Json::str(message)),
    ];
    if let Some(tail) = flight {
        error.push(("flight".to_string(), tail));
    }
    obj.push(("error".to_string(), Json::Obj(error)));
    Json::Obj(obj).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_explore_request() {
        let r = Request::parse_line(r#"{"op":"explore","kernel":"me-small","array":"Old"}"#)
            .unwrap();
        assert_eq!(
            r.op,
            Op::Explore(ExploreParams {
                kernel: "me-small".into(),
                array: Some("Old".into()),
                depth: None,
            })
        );
        assert!(r.cache_key.is_some());
        assert!(r.id.is_none());
    }

    #[test]
    fn cache_key_ignores_id_deadline_and_key_order() {
        let a = Json::parse(r#"{"op":"explore","kernel":"fir","id":7,"deadline_ms":50}"#).unwrap();
        let b = Json::parse(r#"{"kernel":"fir","op":"explore","id":"other"}"#).unwrap();
        let c = Json::parse(r#"{"op":"explore","kernel":"me"}"#).unwrap();
        assert_eq!(cache_key(&a), cache_key(&b));
        assert_ne!(cache_key(&a), cache_key(&c));
    }

    #[test]
    fn cache_key_canonicalizes_nested_objects() {
        let a = Json::parse(r#"{"op":"x","p":{"a":1,"b":[{"y":2,"z":3}]}}"#).unwrap();
        let b = Json::parse(r#"{"p":{"b":[{"z":3,"y":2}],"a":1},"op":"x"}"#).unwrap();
        assert_eq!(cache_key(&a), cache_key(&b));
    }

    #[test]
    fn control_ops_are_not_cacheable() {
        for op in [
            "stats", "health", "trace", "prom", "profile", "memstats", "ping", "shutdown",
        ] {
            let r = Request::parse_line(&format!(r#"{{"op":"{op}"}}"#)).unwrap();
            assert!(r.cache_key.is_none(), "{op} must not be cached");
        }
    }

    #[test]
    fn parses_a_batch_with_individually_keyed_sub_requests() {
        let r = Request::parse_line(
            r#"{"op":"batch","id":9,"requests":[
                {"op":"explore","kernel":"fir","id":"sub-a"},
                {"op":"ping"}]}"#,
        )
        .unwrap();
        assert!(r.cache_key.is_none(), "the batch frame itself is not cached");
        let Op::Batch(subs) = &r.op else {
            panic!("expected a batch op");
        };
        assert_eq!(subs.len(), 2);
        // Sub-requests carry the same canonical key as the standalone
        // request, so batch traffic shares the cache with single frames.
        let standalone =
            Request::parse_line(r#"{"op":"explore","kernel":"fir"}"#).unwrap();
        assert_eq!(subs[0].cache_key, standalone.cache_key);
        assert!(subs[1].cache_key.is_none());
        assert_eq!(subs[0].id.as_ref().and_then(Json::as_str), Some("sub-a"));
    }

    #[test]
    fn batch_rejects_empty_nested_oversized_and_shutdown() {
        for (line, needle) in [
            (r#"{"op":"batch"}"#.to_string(), "`requests` array"),
            (r#"{"op":"batch","requests":[]}"#.to_string(), "empty"),
            (
                r#"{"op":"batch","requests":[{"op":"shutdown"}]}"#.to_string(),
                "cannot ride in a batch",
            ),
            (
                r#"{"op":"batch","requests":[{"op":"batch","requests":[{"op":"ping"}]}]}"#
                    .to_string(),
                "do not nest",
            ),
            (
                format!(
                    r#"{{"op":"batch","requests":[{}]}}"#,
                    vec![r#"{"op":"ping"}"#; MAX_BATCH + 1].join(",")
                ),
                "limit is",
            ),
            (
                r#"{"op":"batch","requests":[{"op":"explore"}]}"#.to_string(),
                "batch request 0",
            ),
        ] {
            let e = Request::parse_line(&line).unwrap_err();
            assert!(e.contains(needle), "`{needle}` not in `{e}`");
        }
    }

    #[test]
    fn coalesced_envelopes_carry_the_marker_only_when_set() {
        let plain = ok_envelope_coalesced(None, false, false, "1");
        assert_eq!(plain, ok_envelope(None, false, "1"));
        assert!(!plain.contains("coalesced"));
        let marked = ok_envelope_coalesced(None, false, true, "1");
        let doc = Json::parse(&marked).unwrap();
        assert_eq!(doc.get("coalesced").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn op_names_cover_every_parseable_op() {
        for name in OP_NAMES {
            let line = match name {
                "explore" | "pareto" | "report" | "codegen" => {
                    format!(r#"{{"op":"{name}","kernel":"fir"}}"#)
                }
                "batch" => r#"{"op":"batch","requests":[{"op":"ping"}]}"#.to_string(),
                _ => format!(r#"{{"op":"{name}"}}"#),
            };
            let r = Request::parse_line(&line).unwrap();
            assert_eq!(r.op.name(), name, "OP_NAMES entry round-trips");
        }
    }

    #[test]
    fn stats_accepts_flight_and_series_flags() {
        let r = Request::parse_line(r#"{"op":"stats","flight":true}"#).unwrap();
        assert_eq!(r.op, Op::Stats { flight: true, series: false });
        let r = Request::parse_line(r#"{"op":"stats","series":true}"#).unwrap();
        assert_eq!(r.op, Op::Stats { flight: false, series: true });
        let r = Request::parse_line(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(r.op, Op::Stats { flight: false, series: false });
        assert!(Request::parse_line(r#"{"op":"stats","flight":3}"#).is_err());
        assert!(Request::parse_line(r#"{"op":"stats","series":"yes"}"#).is_err());
        assert_eq!(
            Request::parse_line(r#"{"op":"health"}"#).unwrap().op,
            Op::Health
        );
    }

    #[test]
    fn error_envelopes_can_attach_a_flight_tail() {
        let tail = Json::arr([Json::obj([("event", Json::str("queue_reject"))])]);
        let err = err_envelope_with_flight(None, E_OVERLOADED, "queue full", Some(tail));
        let doc = Json::parse(&err).unwrap();
        let flight = doc
            .get("error")
            .and_then(|e| e.get("flight"))
            .and_then(Json::as_array)
            .expect("flight array attached");
        assert_eq!(
            flight[0].get("event").and_then(Json::as_str),
            Some("queue_reject")
        );
        // The plain form attaches nothing.
        let plain = err_envelope(None, E_TIMEOUT, "late");
        assert!(Json::parse(&plain)
            .unwrap()
            .get("error")
            .and_then(|e| e.get("flight"))
            .is_none());
    }

    #[test]
    fn rejects_malformed_and_ill_typed_requests() {
        for (line, needle) in [
            ("", "parse error"),
            ("42", "must be a JSON object"),
            ("{}", "missing `op`"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"explore"}"#, "missing `kernel`"),
            (r#"{"op":"explore","kernel":"fir","depth":-1}"#, "unsigned"),
            (r#"{"op":"explore","kernel":"fir","deadline_ms":"soon"}"#, "deadline_ms"),
            (r#"{"op":"pareto","kernel":"fir","library":"big"}"#, "array of sizes"),
            (r#"{"op":"codegen","kernel":"fir","pair":[1]}"#, "two-element"),
            (r#"{"op":"codegen","kernel":"fir","strategy":"turbo"}"#, "unknown strategy"),
        ] {
            let e = Request::parse_line(line).unwrap_err();
            assert!(e.contains(needle), "`{line}` -> `{e}`");
        }
    }

    #[test]
    fn envelopes_are_valid_json_and_echo_the_id() {
        let id = Json::UInt(9);
        let ok = ok_envelope(Some(&id), true, r#"{"x":1}"#);
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(9));
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("result").and_then(|r| r.get("x")).and_then(Json::as_u64),
            Some(1)
        );
        let err = err_envelope(None, E_TIMEOUT, "deadline of 5ms expired");
        let doc = Json::parse(&err).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some(E_TIMEOUT)
        );
        assert!(doc.get("cached").is_none());
    }

    #[test]
    fn strategy_strings_round_trip() {
        assert_eq!(parse_strategy(None).unwrap(), Strategy::MaxReuse);
        assert_eq!(parse_strategy(Some("max")).unwrap(), Strategy::MaxReuse);
        assert_eq!(
            parse_strategy(Some("partial:3")).unwrap(),
            Strategy::Partial { gamma: 3 }
        );
        assert_eq!(
            parse_strategy(Some("bypass:2")).unwrap(),
            Strategy::PartialBypass { gamma: 2 }
        );
        assert!(parse_strategy(Some("warp")).is_err());
    }
}
