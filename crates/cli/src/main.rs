//! `datareuse` — the prototype exploration tool of the paper, as a CLI.
//!
//! ```text
//! datareuse kernels [--json]
//! datareuse emit    <kernel> [--rust]
//! datareuse explore <kernel> --array NAME [--depth N] [--simulate] [--workingset]
//!                   [--cross-validate] [--gnuplot FILE] [--json] [--explain FILE]
//!                   [--metrics FILE] [--profile-out FILE] [--progress]
//! datareuse curve   <kernel> --array NAME --sizes 8,64,512 [--policy opt|opt-bypass]
//! datareuse orders  <kernel> --array NAME [--limit N]
//! datareuse codegen <kernel> --array NAME [--pair O,I] [--strategy max|partial:G|bypass:G]
//!                   [--selfcheck] [--single-assignment] [--adopt] [--band DEPTH] [--rust]
//! datareuse report  <kernel> [--json] [--explain FILE] [--metrics FILE]
//!                   [--profile-out FILE] [--progress]
//! datareuse scorecard [--json] [--baseline FILE] [--update-baseline]
//!                   [--bench-dir DIR]
//! datareuse serve   [--addr HOST:PORT] [--threads N] [--loops N] [--queue-depth N]
//!                   [--cache-entries N] [--cache-snapshot FILE] [--deadline-ms MS]
//!                   [--metrics FILE] [--trace-out FILE] [--series-out FILE]
//!                   [--scrape-ms MS] [--slo-p99-ms MS] [--slo-hit-ratio R]
//!                   [--slo-queue F] [--progress]
//! datareuse query   --addr HOST:PORT <request-json>...
//! datareuse top     --addr HOST:PORT [--interval-ms MS] [--once] [--ascii]
//! datareuse bench-serve [--connections N] [--out FILE] [--threads N] [--loops N]
//! datareuse bench-corpus [--out FILE] [--samples N]
//! ```
//!
//! `<kernel>` is a built-in name (see `datareuse kernels`), a
//! generated-corpus name (`gen-matmul-32x32x32`, …), an inline einsum
//! expression such as `'C[i,j] += A[i,k] * B[k,j]'` (also accepted via
//! `--expr EXPR`), or a path to a `.dr` DSL file. Expression parse
//! errors print a caret snippet pointing at the offending line:column
//! and exit with the usage code (2).
//!
//! `emit --rust` prints the kernel as a runnable Rust `main.rs` instead
//! of C; `codegen --band DEPTH --rust` prints the footprint-level band
//! copy as a self-checking Rust program (compile it with `rustc`, run
//! it, and it prints `OK <checksum>` iff the transformed stream matches
//! the original). `bench-corpus` sweeps the generated corpus through
//! the explorer and writes a benchmark artifact with per-kernel explore
//! latency and the symbolic-profile hit rate.
//!
//! `--metrics FILE` enables the observability registry for the run and
//! writes a `datareuse-metrics-v2` JSON snapshot (span timings, event
//! counters, latency histograms, worker-load distribution) to FILE;
//! `--progress` narrates the live counters to stderr once per second
//! while the command runs. `serve` records metrics unconditionally (its
//! `stats`/`prom` ops must have data to report); `--trace-out FILE`
//! additionally records request traces and writes them as Chrome
//! trace-event JSON (loadable in Perfetto) when the server drains.
//!
//! `--profile-out FILE` additionally opens a root `run` span around the
//! command and writes the span-derived self-time profile in collapsed-
//! stack format (one `a;b;c SELF_NS` line, `flamegraph.pl`-compatible)
//! when the command finishes; a `profile: wall_ns N` line on stderr
//! reports the measured wall time the self times partition. `scorecard`
//! folds every committed `benchmarks/BENCH_*.json` artifact plus a
//! fresh smoke sweep into a `datareuse-scorecard-v1` document and, when
//! a baseline (`benchmarks/SCORECARD.json` by default) exists, judges
//! each metric `better`, `within-noise`, or `regressed` against it.
//!
//! `--explain FILE` runs the exploration through the audit sink and
//! writes one NDJSON record per copy-candidate and per evaluated
//! hierarchy — the `(c', b')` reuse vector, the eq. 1 `C_tot`/`C_R`/
//! `F_R` terms, the eq. 2–3 cost terms, and the terminal verdict
//! (`kept`, `bypass`, `pruned`, or `dominated-by <id>`). The report's
//! `why` section is distilled from the same log.
//!
//! `--cross-validate` replays the trace simulators as an independent
//! oracle over the analytical (symbolic-first) result: the guard-aware
//! trace length must equal `C_tot`, and Belady-optimal replacement at
//! each exact candidate's capacity must need no more upstream traffic
//! than the candidate claims. Verdict lines go to stderr; any
//! disagreement fails the command with exit code 1.
//!
//! Exit codes: 0 on success, 1 on a runtime failure (unreadable kernel
//! file, exploration error, transport failure or generic server error),
//! 2 on a usage error (unknown subcommand, missing or malformed flags) —
//! usage errors also print the usage summary to stderr. `query` maps
//! structured server errors to distinct codes: 3 for `timeout`, 4 for
//! `overloaded`, and prints any attached flight-recorder tail to stderr;
//! a `health` response maps its status to 5 (`degraded`) or 6
//! (`failing`) so probes can alert without parsing JSON. `scorecard`
//! exits 7 when any metric regresses past its noise band, which is what
//! lets `scripts/verify.sh` gate on it.

mod top;

use std::io::Write as _;
use std::process::ExitCode;

use datareuse_codegen::{
    emit_program, emit_rust_program, emit_rust_selfcheck_band, gnuplot_script, Series,
};
use datareuse_core::{
    explore_orders, explore_program_explained, explore_signal_explained, ExplorationReport,
    ExploreOptions,
};
use datareuse_exprlang::{looks_like_expression, parse_expression};
use datareuse_kernels::{corpus, load_kernel, BUILTINS, DEFAULT_CORPUS_SEED};
use datareuse_loopir::{read_addresses, AccessKind, Program};
use datareuse_memmodel::{BitCount, MemoryTechnology};
use datareuse_obs::Json;
use datareuse_server::ops::{codegen_text, default_array};
use datareuse_server::protocol::{parse_strategy, CodegenSpec};
use datareuse_server::{Client, Server, ServerConfig};
use datareuse_trace::{CurvePolicy, ReuseCurve, TraceStats};

const USAGE: &str = "usage: datareuse <command> [args]
  kernels [--json]              list built-in and generated-corpus kernels
  emit    <kernel> [--rust]     print the kernel as C (or runnable Rust)
  explore <kernel> [--array NAME] [--depth N] [--json] [--simulate]
                   [--workingset] [--cross-validate] [--gnuplot FILE]
                   [--explain FILE] [--metrics FILE] [--profile-out FILE]
                   [--alloc-profile FILE] [--progress]
  report  <kernel> [--json] [--explain FILE] [--metrics FILE]
                   [--profile-out FILE] [--alloc-profile FILE] [--progress]
  scorecard [--json] [--baseline FILE] [--update-baseline] [--bench-dir DIR]
  orders  <kernel> [--array NAME] [--limit N]
  curve   <kernel> [--array NAME] --sizes 8,64,512 [--policy opt|opt-bypass]
  codegen <kernel> [--array NAME] [--pair O,I] [--strategy max|partial:G|bypass:G]
                   [--selfcheck] [--single-assignment] [--adopt] [--band DEPTH]
                   [--rust]
  serve   [--addr HOST:PORT] [--threads N] [--loops N] [--queue-depth N]
          [--cache-entries N] [--cache-snapshot FILE] [--deadline-ms MS]
          [--metrics FILE] [--trace-out FILE] [--series-out FILE] [--scrape-ms MS]
          [--slo-p99-ms MS] [--slo-hit-ratio R] [--slo-queue F]
          [--profile-out FILE] [--alloc-profile FILE] [--progress]
  query   --addr HOST:PORT <request-json>...
  top     --addr HOST:PORT [--interval-ms MS] [--once] [--ascii]
  bench-serve [--connections N] [--out FILE] [--threads N] [--loops N]
  bench-corpus [--out FILE] [--samples N]
<kernel> is a built-in name (`datareuse kernels`), a generated-corpus name
(gen-matmul-32x32x32, ...), an inline einsum expression like
'C[i,j] += A[i,k] * B[k,j]' (also via --expr EXPR), or a path to a .dr file.
query exit codes: 0 ok, 1 transport/server error, 3 timeout, 4 overloaded,
5 health degraded, 6 health failing; scorecard exits 7 on a regression.";

/// A CLI failure, split by whose fault it is: `Usage` is a malformed
/// invocation (exit 2, prints the usage summary), `Runtime` is a
/// failure of valid work (exit 1), and `Server` is a structured failure
/// carrying its own exit code (3 timeout, 4 overloaded, 7 scorecard
/// regression) so scripts can distinguish retry-later refusals and
/// regression verdicts from hard failures.
enum CliError {
    Usage(String),
    Runtime(String),
    Server { exit: u8, msg: String },
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Runtime(msg.to_string())
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| (*v).clone());
                if value.is_some() {
                    it.next();
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Self { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn kernel(&self) -> Result<&String, CliError> {
        self.positional
            .first()
            .ok_or_else(|| usage("missing kernel"))
    }
}

/// Parses an inline einsum expression, rendering parse failures as
/// usage errors (exit 2) with a caret snippet pointing at the offending
/// line:column on stderr.
fn parse_cli_expression(src: &str) -> Result<Program, CliError> {
    parse_expression(src).map_err(|e| {
        let line = src.lines().nth(e.line.saturating_sub(1)).unwrap_or("");
        let caret = format!("{}^", " ".repeat(e.column.saturating_sub(1)));
        usage(format!("expression parse error at {e}\n  {line}\n  {caret}"))
    })
}

/// Resolves the command's kernel operand: `--expr SOURCE`, or the first
/// positional — which may itself be an inline expression, a built-in or
/// generated-corpus name, or a `.dr` file path. Expression parse errors
/// are usage errors with a caret snippet; `.dr` file errors stay
/// runtime errors (exit 1).
fn cli_kernel(args: &Args) -> Result<Program, CliError> {
    if let Some(src) = args.flag("expr") {
        return parse_cli_expression(src);
    }
    if args.has("expr") {
        return Err(usage("--expr expects an expression string"));
    }
    let name = args.kernel()?;
    if looks_like_expression(name) && !name.ends_with(".dr") {
        return parse_cli_expression(name);
    }
    load_kernel(name).map_err(CliError::Runtime)
}

fn pick_array(args: &Args, program: &Program) -> Result<String, String> {
    match args.flag("array") {
        Some(a) => Ok(a.to_string()),
        None => default_array(program).ok_or_else(|| "program has no read accesses".to_string()),
    }
}

/// One kernel's iteration-domain / array-footprint summary for the
/// `kernels` listing: (nest count, total iterations, array count, total
/// array elements).
fn kernel_summary(program: &Program) -> (usize, u64, usize, u64) {
    let iters = program.nests().iter().map(|n| n.iteration_count()).sum();
    let elems = program
        .arrays()
        .iter()
        .map(|a| a.extents().iter().product::<i64>() as u64)
        .sum();
    (program.nests().len(), iters, program.arrays().len(), elems)
}

fn kernel_summary_json(name: &str, desc: &str, program: &Program) -> Json {
    let (nests, iters, _, elems) = kernel_summary(program);
    Json::obj([
        ("name", Json::str(name)),
        ("description", Json::str(desc)),
        ("nests", Json::UInt(nests as u64)),
        ("iterations", Json::UInt(iters)),
        (
            "arrays",
            Json::arr(program.arrays().iter().map(|a| {
                Json::obj([
                    ("name", Json::str(a.name())),
                    (
                        "extents",
                        Json::arr(a.extents().iter().map(|&e| Json::UInt(e as u64))),
                    ),
                    ("bits", Json::UInt(a.elem_bits() as u64)),
                ])
            })),
        ),
        ("footprint_elements", Json::UInt(elems)),
    ])
}

fn cmd_kernels(args: &Args) -> Result<(), CliError> {
    if args.has("json") {
        let builtins: Vec<Json> = BUILTINS
            .iter()
            .map(|(name, desc)| {
                let p = load_kernel(name).expect("builtins load");
                kernel_summary_json(name, desc, &p)
            })
            .collect();
        let corpus_entries: Vec<Json> = corpus()
            .iter()
            .map(|e| {
                let p = load_kernel(&e.name).expect("corpus entries load");
                let mut doc = kernel_summary_json(&e.name, &e.description, &p);
                if let Json::Obj(fields) = &mut doc {
                    fields.insert(2, ("expr".to_string(), Json::str(&e.expr)));
                }
                doc
            })
            .collect();
        println!(
            "{}",
            Json::obj([
                ("builtins", Json::Arr(builtins)),
                ("corpus_seed", Json::UInt(DEFAULT_CORPUS_SEED)),
                ("corpus", Json::Arr(corpus_entries)),
            ])
        );
        return Ok(());
    }
    println!("built-in kernels:");
    for (name, desc) in BUILTINS {
        let p = load_kernel(name).expect("builtins load");
        let (nests, iters, arrays, elems) = kernel_summary(&p);
        println!("  {name:<22} {desc}");
        println!(
            "  {:<22} {nests} nest(s), {iters} iterations, \
             {arrays} array(s), {elems} elements",
            ""
        );
    }
    println!();
    println!(
        "generated corpus ({} entries, seed {DEFAULT_CORPUS_SEED:#x}):",
        corpus().len()
    );
    for e in corpus() {
        let p = load_kernel(&e.name).expect("corpus entries load");
        let (nests, iters, arrays, elems) = kernel_summary(&p);
        println!("  {:<22} {}", e.name, e.description);
        println!(
            "  {:<22} {nests} nest(s), {iters} iterations, \
             {arrays} array(s), {elems} elements",
            ""
        );
    }
    Ok(())
}

fn cmd_emit(args: &Args) -> Result<(), CliError> {
    let program = cli_kernel(args)?;
    if args.has("rust") {
        print!("{}", emit_rust_program(&program));
    } else {
        print!("{}", emit_program(&program));
    }
    Ok(())
}

/// One command's observability lifecycle: `--metrics FILE`,
/// `--profile-out FILE`, and `--alloc-profile FILE` enable the registry,
/// `--progress` starts the live narrator, and a root `run` span brackets
/// the command whenever a profile (time or allocation) was requested so
/// the exported self weights partition the measured totals.
/// [`Observability::finish`] closes the span and writes the requested
/// artifacts.
struct Observability {
    metrics_path: Option<String>,
    profile_path: Option<String>,
    alloc_profile_path: Option<String>,
    progress: Option<datareuse_obs::Progress>,
    run_span: Option<datareuse_obs::SpanGuard>,
    started: std::time::Instant,
    /// Process-wide `bytes_allocated` when the command started; the
    /// delta at finish is the `alloc: total_bytes N` stderr line.
    alloc_baseline: u64,
}

fn path_flag(args: &Args, name: &str) -> Result<Option<String>, CliError> {
    match args.flag(name) {
        Some(path) => Ok(Some(path.to_string())),
        None if args.has(name) => Err(usage(&format!("--{name} expects a file path"))),
        None => Ok(None),
    }
}

fn start_observability(args: &Args) -> Result<Observability, CliError> {
    let metrics_path = args.flag("metrics").map(str::to_string);
    let profile_path = path_flag(args, "profile-out")?;
    let alloc_profile_path = path_flag(args, "alloc-profile")?;
    if metrics_path.is_some() || profile_path.is_some() || alloc_profile_path.is_some() {
        datareuse_obs::set_metrics_enabled(true);
    }
    let run_span = (profile_path.is_some() || alloc_profile_path.is_some())
        .then(|| datareuse_obs::span("run"));
    let progress = args
        .has("progress")
        .then(|| datareuse_obs::Progress::start(std::time::Duration::from_secs(1)));
    Ok(Observability {
        metrics_path,
        profile_path,
        alloc_profile_path,
        progress,
        run_span,
        started: std::time::Instant::now(),
        alloc_baseline: datareuse_obs::alloc_snapshot().bytes_allocated,
    })
}

impl Observability {
    /// Stops the narrator, closes the root `run` span, and writes the
    /// profile, allocation-profile, and metrics artifacts if they were
    /// requested. The `profile: wall_ns N` and `alloc: total_bytes N`
    /// stderr lines are the totals the collapsed stacks' (and
    /// memprofile rows') self weights must sum back to (pinned by the
    /// CLI gates).
    fn finish(mut self) -> Result<(), String> {
        self.progress.take();
        self.run_span.take();
        if let Some(path) = &self.profile_path {
            let wall_ns = self.started.elapsed().as_nanos();
            eprintln!("profile: wall_ns {wall_ns}");
            std::fs::write(path, datareuse_obs::collapsed_stacks())
                .map_err(|e| format!("cannot write profile to `{path}`: {e}"))?;
            eprintln!("profile (collapsed stacks) written to {path}");
        }
        if let Some(path) = &self.alloc_profile_path {
            let total_bytes = datareuse_obs::alloc_snapshot()
                .bytes_allocated
                .saturating_sub(self.alloc_baseline);
            eprintln!("alloc: total_bytes {total_bytes}");
            let doc = datareuse_obs::memprofile_json().to_string();
            std::fs::write(path, doc + "\n")
                .map_err(|e| format!("cannot write alloc profile to `{path}`: {e}"))?;
            eprintln!("alloc profile (datareuse-memprofile-v1) written to {path}");
        }
        if let Some(path) = &self.metrics_path {
            write_metrics(path)?;
        }
        Ok(())
    }
}

/// Writes the metrics snapshot accumulated so far to `path`.
fn write_metrics(path: &str) -> Result<(), String> {
    let json = datareuse_obs::snapshot().to_json().to_string();
    std::fs::write(path, json + "\n")
        .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))?;
    eprintln!("metrics written to {path}");
    Ok(())
}

/// Creates the exploration audit sink when `--explain FILE` is given.
fn explain_sink(args: &Args) -> Result<Option<(String, datareuse_obs::Explain)>, CliError> {
    match args.flag("explain") {
        Some(path) => Ok(Some((path.to_string(), datareuse_obs::Explain::new()))),
        None if args.has("explain") => Err(usage("--explain expects a file path")),
        None => Ok(None),
    }
}

/// Writes the accumulated audit log as NDJSON to `path`.
fn write_explain(path: &str, sink: &datareuse_obs::Explain) -> Result<(), String> {
    std::fs::write(path, sink.to_ndjson())
        .map_err(|e| format!("cannot write explain log to `{path}`: {e}"))?;
    eprintln!("explain log ({} records) written to {path}", sink.len());
    Ok(())
}

/// Replays the trace simulators as an independent oracle over the
/// analytical result: the guard-aware trace length must equal `C_tot`,
/// and Belady-optimal replacement at each exact candidate's capacity
/// must need at most the candidate's claimed upstream traffic (the
/// analytical schedule is feasible, so the optimum can only match or
/// beat it). Verdict lines go to stderr so `--json` stdout stays clean.
fn cross_validate(
    program: &Program,
    array: &str,
    ex: &datareuse_core::SignalExploration,
) -> Result<(), CliError> {
    let trace = read_addresses(program, array);
    let mut failures: Vec<String> = Vec::new();
    if trace.len() as u64 != ex.c_tot {
        failures.push(format!(
            "analytical C_tot {} != trace length {}",
            ex.c_tot,
            trace.len()
        ));
    }
    let mut checked = 0usize;
    for c in ex.candidates.iter().filter(|c| c.exact && c.size > 0) {
        checked += 1;
        let sim = if c.bypasses == 0 {
            datareuse_trace::opt_simulate(&trace, c.size)
        } else {
            datareuse_trace::opt_simulate_bypass(&trace, c.size)
        };
        if sim.misses() > c.fills + c.bypasses {
            failures.push(format!(
                "candidate of size {}: Belady needs {} upstream reads, \
                 analytical model claims {} (fills {} + bypasses {})",
                c.size,
                sim.misses(),
                c.fills + c.bypasses,
                c.fills,
                c.bypasses
            ));
        }
    }
    eprintln!(
        "cross-validation: C_tot {} vs trace length {}, {checked} exact \
         candidates replayed against the Belady oracle",
        ex.c_tot,
        trace.len()
    );
    if failures.is_empty() {
        eprintln!("cross-validation: PASS");
        Ok(())
    } else {
        for f in &failures {
            eprintln!("cross-validation: FAIL — {f}");
        }
        Err(format!(
            "cross-validation failed: {} disagreement(s) between the \
             analytical model and the trace simulators",
            failures.len()
        )
        .into())
    }
}

fn cmd_explore(args: &Args) -> Result<(), CliError> {
    let program = cli_kernel(args)?;
    let array = pick_array(args, &program)?;
    let mut opts = ExploreOptions::default();
    if let Some(d) = args.flag("depth") {
        opts.max_chain_depth = d.parse().map_err(|_| usage("bad --depth"))?;
    }
    let obs = start_observability(args)?;
    let explain = explain_sink(args)?;
    let sink = explain.as_ref().map(|(_, s)| s);
    let ex = explore_signal_explained(&program, &array, &opts, sink).map_err(|e| e.to_string())?;
    if args.has("cross-validate") {
        cross_validate(&program, &array, &ex)?;
    }
    let tech = MemoryTechnology::new();
    // The report builds its own (unexplained) front; when auditing, run
    // the explained front once so the sink gets the chain records, then
    // distill the report's `why` section from the same log.
    if let Some(s) = sink {
        ex.pareto_explained(&opts, &tech, &BitCount, Some(s));
    }
    let mut report = ExplorationReport::build(&ex, &opts, &tech, &BitCount);
    if let Some(s) = sink {
        report = report.with_why(s);
    }
    if args.has("json") {
        println!("{}", report.to_json());
        if let Some((path, s)) = &explain {
            write_explain(path, s)?;
        }
        obs.finish()?;
        return Ok(());
    }
    print!("{report}");
    let front = ex.pareto(&opts, &tech, &BitCount);
    // The working-set and simulation views replay the same read trace;
    // generate it once instead of once per view.
    let trace = (args.has("workingset") || args.has("simulate"))
        .then(|| read_addresses(&program, &array));
    if args.has("workingset") {
        let trace = trace.as_deref().expect("trace generated above");
        println!("\nworking-set profile (window, avg, peak):");
        for w in [64u64, 256, 1024, 4096] {
            let ws = datareuse_trace::working_set_profile(trace, w);
            println!("  {:>6}  {:>10.1}  {:>8}", ws.window, ws.average, ws.peak);
        }
    }
    if args.has("simulate") {
        let trace = trace.as_deref().expect("trace generated above");
        let stats = TraceStats::compute(trace);
        println!(
            "\nsimulation: {} accesses, footprint {}, average reuse {:.1}",
            stats.accesses,
            stats.footprint,
            stats.average_reuse()
        );
        let sizes: Vec<u64> = ex.candidates.iter().map(|c| c.size).collect();
        let curve = ReuseCurve::simulate(trace, sizes, CurvePolicy::Optimal);
        println!("Belady-optimal reuse factors at the analytical sizes:");
        for p in curve.points() {
            println!("  {:>8}  {:>8.2}", p.size, p.reuse_factor);
        }
    }
    if let Some(path) = args.flag("gnuplot") {
        let analytic: Vec<(f64, f64)> = ex
            .reuse_factor_points()
            .into_iter()
            .map(|(s, f)| (s as f64, f))
            .collect();
        let pareto: Vec<(f64, f64)> = front.iter().map(|p| (p.size.max(1.0), p.power)).collect();
        let script = gnuplot_script(
            &format!("Data reuse exploration: {array}"),
            "copy-candidate size [elements]",
            "F_R / normalized power",
            true,
            &[
                Series::new("analytical F_R", analytic).with_style("points pt 7"),
                Series::new("Pareto power", pareto).with_style("linespoints"),
            ],
        );
        std::fs::write(path, script).map_err(|e| e.to_string())?;
        println!("\ngnuplot script written to {path}");
    }
    if let Some((path, s)) = &explain {
        write_explain(path, s)?;
    }
    obs.finish()?;
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), CliError> {
    let program = cli_kernel(args)?;
    let opts = ExploreOptions::default();
    let tech = MemoryTechnology::new();
    let obs = start_observability(args)?;
    let explain = explain_sink(args)?;
    let sink = explain.as_ref().map(|(_, s)| s);
    let explorations =
        explore_program_explained(&program, &opts, sink).map_err(|e| e.to_string())?;
    // One sink serves all signals: `why_lines` filters by array, so each
    // report distills only its own records.
    let build = |ex: &datareuse_core::SignalExploration| {
        if let Some(s) = sink {
            ex.pareto_explained(&opts, &tech, &BitCount, Some(s));
        }
        let report = ExplorationReport::build(ex, &opts, &tech, &BitCount);
        match sink {
            Some(s) => report.with_why(s),
            None => report,
        }
    };
    if args.has("json") {
        let docs: Vec<String> = explorations.iter().map(|ex| build(ex).to_json()).collect();
        println!("[{}]", docs.join(","));
    } else {
        for (i, ex) in explorations.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", build(ex));
        }
    }
    if let Some((path, s)) = &explain {
        write_explain(path, s)?;
    }
    obs.finish()?;
    Ok(())
}

fn cmd_orders(args: &Args) -> Result<(), CliError> {
    let program = cli_kernel(args)?;
    let array = pick_array(args, &program)?;
    let limit: usize = args
        .flag("limit")
        .map(|v| v.parse().map_err(|_| usage("bad --limit")))
        .transpose()?
        .unwrap_or(24);
    let tech = MemoryTechnology::new();
    let orders = explore_orders(
        &program,
        &array,
        &ExploreOptions::default(),
        &tech,
        &BitCount,
        limit,
    )
    .map_err(|e| e.to_string())?;
    println!("loop orderings for `{array}` ranked by best normalized power:");
    for o in &orders {
        println!(
            "  [{}]  power {:.4} at {} on-chip elements",
            o.loop_names.join(", "),
            o.best_power,
            o.best_words
        );
    }
    Ok(())
}

fn cmd_curve(args: &Args) -> Result<(), CliError> {
    let program = cli_kernel(args)?;
    let array = pick_array(args, &program)?;
    let sizes: Vec<u64> = args
        .flag("sizes")
        .ok_or_else(|| usage("missing --sizes"))?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| usage(format!("bad size `{s}`"))))
        .collect::<Result<_, _>>()?;
    let policy = match args.flag("policy") {
        None | Some("opt") => CurvePolicy::Optimal,
        Some("opt-bypass") => CurvePolicy::OptimalBypass,
        Some(other) => return Err(usage(format!("unknown policy `{other}`"))),
    };
    let trace = read_addresses(&program, &array);
    let curve = ReuseCurve::simulate(&trace, sizes, policy);
    print!("{}", curve.to_gnuplot());
    Ok(())
}

fn cmd_codegen(args: &Args) -> Result<(), CliError> {
    let program = cli_kernel(args)?;
    let array = pick_array(args, &program)?;
    let pair = match args.flag("pair") {
        Some(p) => {
            let parts: Vec<&str> = p.split(',').collect();
            if parts.len() != 2 {
                return Err(usage("--pair expects O,I"));
            }
            Some((
                parts[0].trim().parse().map_err(|_| usage("bad --pair"))?,
                parts[1].trim().parse().map_err(|_| usage("bad --pair"))?,
            ))
        }
        None => None,
    };
    let spec = CodegenSpec {
        pair,
        strategy: parse_strategy(args.flag("strategy")).map_err(usage)?,
        selfcheck: args.has("selfcheck"),
        adopt: args.has("adopt"),
        single_assignment: args.has("single-assignment"),
        band: args
            .flag("band")
            .map(|d| d.parse().map_err(|_| usage("bad --band depth")))
            .transpose()?,
    };
    if args.has("rust") {
        // The Rust emitter covers the band template only (the Fig. 8
        // pairwise forms stay C); it is always a self-check program.
        let Some(depth) = spec.band else {
            return Err(usage("--rust requires --band DEPTH"));
        };
        let (nest_idx, access_idx) = program
            .nests()
            .iter()
            .enumerate()
            .find_map(|(ni, nest)| {
                nest.accesses()
                    .iter()
                    .position(|a| a.array() == array && a.kind() == AccessKind::Read)
                    .map(|ai| (ni, ai))
            })
            .ok_or_else(|| format!("no read access to `{array}`"))?;
        let code = emit_rust_selfcheck_band(&program, nest_idx, access_idx, depth)
            .map_err(|e| e.to_string())?;
        print!("{code}");
        return Ok(());
    }
    // The server's codegen op runs through the same function, so
    // serve-mode output is byte-identical to this subcommand's.
    let code = codegen_text(&program, &array, &spec)?;
    print!("{code}");
    Ok(())
}

/// `bench-corpus`: sweeps the generated corpus through the symbolic-first
/// explorer and writes `benchmarks/BENCH_corpus.json` — one bench per
/// corpus kernel (explore latency over `--samples` runs, `elements` =
/// iteration-domain size) plus a `symbolic` object with the sweep-wide
/// symbolic-profile hit rate. The artifact is schema-checked by
/// `tests/bench_artifacts.rs` and regenerated by `scripts/verify.sh`.
fn cmd_bench_corpus(args: &Args) -> Result<(), CliError> {
    use std::time::Instant;

    let out_path = args
        .flag("out")
        .unwrap_or("benchmarks/BENCH_corpus.json")
        .to_string();
    let samples: usize = args
        .flag("samples")
        .map(|v| v.parse().map_err(|_| usage("bad --samples")))
        .transpose()?
        .unwrap_or(3);
    if samples == 0 {
        return Err(usage("--samples must be positive"));
    }
    datareuse_obs::set_metrics_enabled(true);
    let opts = ExploreOptions::default();
    let hits_before = datareuse_obs::counter_value(datareuse_obs::Counter::SymbolicHits);
    let falls_before = datareuse_obs::counter_value(datareuse_obs::Counter::SimFallbacks);
    let mut benches = Vec::new();
    for entry in corpus() {
        let program = load_kernel(&entry.name)?;
        let array = default_array(&program)
            .ok_or_else(|| format!("{}: no read accesses", entry.name))?;
        let mut latencies: Vec<u64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let started = Instant::now();
            explore_signal_explained(&program, &array, &opts, None)
                .map_err(|e| format!("{}: {e}", entry.name))?;
            latencies.push((started.elapsed().as_nanos() as u64).max(1));
        }
        latencies.sort_unstable();
        let mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
        let iters: u64 = program.nests().iter().map(|n| n.iteration_count()).sum();
        benches.push(Json::obj([
            ("id", Json::str(entry.name.as_str())),
            ("samples", Json::UInt(latencies.len() as u64)),
            ("min_ns", Json::UInt(latencies[0])),
            ("median_ns", Json::UInt(latencies[latencies.len() / 2])),
            ("mean_ns", Json::Num(mean)),
            ("elements", Json::UInt(iters)),
        ]));
        eprintln!(
            "bench-corpus: {:<26} median {:>9.1}us over {samples} samples",
            entry.name,
            latencies[latencies.len() / 2] as f64 / 1e3
        );
    }
    let hits = datareuse_obs::counter_value(datareuse_obs::Counter::SymbolicHits) - hits_before;
    let fallbacks =
        datareuse_obs::counter_value(datareuse_obs::Counter::SimFallbacks) - falls_before;
    let hit_rate = hits as f64 / ((hits + fallbacks) as f64).max(1.0);
    let doc = Json::obj([
        ("group", Json::str("corpus")),
        ("corpus_seed", Json::UInt(DEFAULT_CORPUS_SEED)),
        ("benches", Json::Arr(benches)),
        (
            "symbolic",
            Json::obj([
                ("hits", Json::UInt(hits)),
                ("fallbacks", Json::UInt(fallbacks)),
                ("hit_rate", Json::Num(hit_rate)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_string() + "\n")
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    eprintln!(
        "bench-corpus: {} kernels, symbolic hit rate {hit_rate:.2}; written to {out_path}",
        corpus().len()
    );
    Ok(())
}

/// Reads every committed `BENCH_*.json` under `dir` as a `(group,
/// parsed document)` pair, sorted by group name. Non-artifact files
/// (including `SCORECARD.json`) are ignored.
fn read_bench_artifacts(dir: &str) -> Result<Vec<(String, Json)>, CliError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read bench dir `{dir}`: {e}"))?;
    let mut docs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read bench dir `{dir}`: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(group) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
        else {
            continue;
        };
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("cannot read `{dir}/{name}`: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{name}: {e}"))?;
        docs.push((group.to_string(), doc));
    }
    if docs.is_empty() {
        return Err(format!("no BENCH_*.json artifacts under `{dir}`").into());
    }
    docs.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(docs)
}

/// Runs the fresh smoke sweep the scorecard folds in alongside the
/// committed artifacts: explore latency and allocation for two pinned
/// kernels, the sweep's symbolic-profile hit rate, agreement between
/// the analytical `C_tot` and the independent trace length, the
/// simulation-vs-symbolic allocation ratio, and the serving loop's
/// steady-state live heap. Recorded through the process-global smoke
/// registry so `reset_metrics` owns the state like every other
/// observability surface.
fn scorecard_smoke_sweep() -> Result<(), CliError> {
    use datareuse_obs::{Counter, Direction, Metric, NOISE_RATE, NOISE_SMOKE};
    datareuse_obs::set_metrics_enabled(true);
    let opts = ExploreOptions::default();
    let hits_before = datareuse_obs::counter_value(Counter::SymbolicHits);
    let falls_before = datareuse_obs::counter_value(Counter::SimFallbacks);
    let alloc_bytes = || datareuse_obs::alloc_snapshot().bytes_allocated;
    let mut agree = true;
    let mut fir_symbolic_bytes = 1.0f64;
    for name in ["fir", "me-small"] {
        let program = load_kernel(name)?;
        let array =
            default_array(&program).ok_or_else(|| format!("{name}: no read accesses"))?;
        let started = std::time::Instant::now();
        let bytes_before = alloc_bytes();
        let ex = explore_signal_explained(&program, &array, &opts, None)
            .map_err(|e| format!("{name}: {e}"))?;
        let elapsed = (started.elapsed().as_nanos() as f64).max(1.0);
        let explore_bytes = (alloc_bytes().saturating_sub(bytes_before) as f64).max(1.0);
        if name == "fir" {
            fir_symbolic_bytes = explore_bytes;
        }
        agree &= read_addresses(&program, &array).len() as u64 == ex.c_tot;
        datareuse_obs::record_smoke_metric(Metric::new(
            format!("smoke_explore_{}_ns", name.replace('-', "_")),
            elapsed,
            NOISE_SMOKE,
            Direction::LowerIsBetter,
        ));
        // Bytes-per-explore: process-wide allocation traffic of one
        // symbolic exploration. The whole point of the closed-form path
        // is to stay allocation-lean; creeping buffers regress here.
        datareuse_obs::record_smoke_metric(Metric::new(
            format!("smoke_alloc_{}_bytes", name.replace('-', "_")),
            explore_bytes,
            NOISE_SMOKE,
            Direction::LowerIsBetter,
        ));
    }
    // Simulation-vs-symbolic allocation ratio on fir: how many bytes one
    // Belady trace-simulation point allocates per byte the closed-form
    // exploration allocates. Higher is better — the symbolic path
    // getting relatively heavier (ratio shrinking) is the regression
    // this metric exists to catch.
    {
        let program = load_kernel("fir")?;
        let array =
            default_array(&program).ok_or_else(|| "fir: no read accesses".to_string())?;
        let trace = read_addresses(&program, &array);
        let bytes_before = alloc_bytes();
        let curve = ReuseCurve::simulate(&trace, [64u64], CurvePolicy::Optimal);
        let sim_bytes = (alloc_bytes().saturating_sub(bytes_before) as f64).max(1.0);
        std::hint::black_box(&curve);
        datareuse_obs::record_smoke_metric(Metric::new(
            "smoke_alloc_symbolic_ratio",
            sim_bytes / fir_symbolic_bytes,
            NOISE_SMOKE,
            Direction::HigherIsBetter,
        ));
    }
    smoke_serve_live_bytes()?;
    let hits = datareuse_obs::counter_value(Counter::SymbolicHits) - hits_before;
    let falls = datareuse_obs::counter_value(Counter::SimFallbacks) - falls_before;
    let rate = hits as f64 / ((hits + falls) as f64).max(1.0);
    datareuse_obs::record_smoke_metric(Metric::new(
        "smoke_symbolic_hit_rate",
        rate,
        NOISE_RATE,
        Direction::HigherIsBetter,
    ));
    datareuse_obs::record_smoke_metric(Metric::new(
        "smoke_symbolic_agreement",
        if agree { 1.0 } else { 0.0 },
        NOISE_RATE,
        Direction::HigherIsBetter,
    ));
    Ok(())
}

/// Serve steady-state live heap: bind a loopback server, run a handful
/// of explore queries through it, and record the process's live bytes
/// after the drain. A serving loop that retains per-request state (a
/// leaky cache entry, an unbounded buffer) regresses here.
fn smoke_serve_live_bytes() -> Result<(), CliError> {
    use datareuse_obs::{Direction, Metric, NOISE_SMOKE};
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr()?;
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&addr.to_string())?;
    for kernel in ["fir", "me-small", "fir"] {
        let response =
            client.send_raw(&format!(r#"{{"op":"explore","kernel":"{kernel}"}}"#))?;
        let doc = Json::parse(&response).map_err(|e| format!("serve smoke: {e}"))?;
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("serve smoke: explore failed: {response}").into());
        }
    }
    client.send_raw(r#"{"op":"shutdown"}"#)?;
    drop(client);
    handle
        .join()
        .map_err(|_| "serve smoke: server thread panicked".to_string())?
        .map_err(|e| format!("serve smoke: {e}"))?;
    datareuse_obs::record_smoke_metric(Metric::new(
        "smoke_serve_live_bytes",
        datareuse_obs::alloc_snapshot().live_bytes as f64,
        NOISE_SMOKE,
        Direction::LowerIsBetter,
    ));
    Ok(())
}

/// Prints the human-readable scorecard table; with a baseline, each row
/// carries its baseline value and verdict plus a closing tally line.
fn print_scorecard_table(
    card: &datareuse_obs::Scorecard,
    baseline: Option<&datareuse_obs::Scorecard>,
) {
    use datareuse_obs::Verdict;
    println!("datareuse scorecard ({} metrics)", card.metrics.len());
    let Some(base) = baseline else {
        for m in &card.metrics {
            println!(
                "  {:<32} {:>16.3}  ({}-is-better, noise {:.2})",
                m.id,
                m.value,
                m.direction.word(),
                m.noise
            );
        }
        return;
    };
    let (mut better, mut within, mut regressed) = (0u64, 0u64, 0u64);
    for (m, base_value, verdict) in card.compare(base) {
        match verdict {
            Some(Verdict::Better) => better += 1,
            Some(Verdict::WithinNoise) => within += 1,
            Some(Verdict::Regressed) => regressed += 1,
            None => {}
        }
        println!(
            "  {:<32} {:>16.3} {:>16} {:>14}",
            m.id,
            m.value,
            base_value.map_or("-".to_string(), |b| format!("{b:.3}")),
            verdict.map_or("new", Verdict::word),
        );
    }
    println!("summary: {better} better, {within} within noise, {regressed} regressed");
}

/// `scorecard`: folds the committed bench artifacts plus a fresh smoke
/// sweep into a `datareuse-scorecard-v1` document and judges it against
/// the committed baseline. Any `regressed` verdict exits 7 — the code
/// `scripts/verify.sh` gates on.
fn cmd_scorecard(args: &Args) -> Result<(), CliError> {
    use datareuse_obs::Scorecard;
    let bench_dir = args.flag("bench-dir").unwrap_or("benchmarks");
    let baseline_path = args.flag("baseline").unwrap_or("benchmarks/SCORECARD.json");
    if args.has("baseline") && args.flag("baseline").is_none() {
        return Err(usage("--baseline expects a file path"));
    }
    let artifacts = read_bench_artifacts(bench_dir)?;
    scorecard_smoke_sweep()?;
    let mut metrics = datareuse_obs::fold_bench_artifacts(&artifacts);
    metrics.extend(datareuse_obs::smoke_metrics());
    let card = Scorecard { metrics };
    if args.has("update-baseline") {
        std::fs::write(baseline_path, card.to_json().to_string() + "\n")
            .map_err(|e| format!("cannot write `{baseline_path}`: {e}"))?;
        eprintln!(
            "scorecard: baseline ({} metrics) written to {baseline_path}",
            card.metrics.len()
        );
        return Ok(());
    }
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => {
            let doc = Json::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
            Some(Scorecard::from_json(&doc).map_err(|e| format!("{baseline_path}: {e}"))?)
        }
        // The default baseline not existing yet is not an error — the
        // scorecard still prints, just without verdicts. An explicitly
        // named baseline must exist.
        Err(_) if !args.has("baseline") => None,
        Err(e) => return Err(format!("cannot read baseline `{baseline_path}`: {e}").into()),
    };
    let Some(base) = &baseline else {
        if args.has("json") {
            println!("{}", card.to_json());
        } else {
            print_scorecard_table(&card, None);
        }
        eprintln!(
            "scorecard: no baseline at {baseline_path}; \
             run `datareuse scorecard --update-baseline` to create one"
        );
        return Ok(());
    };
    if args.has("json") {
        println!("{}", card.compare_json(base));
    } else {
        print_scorecard_table(&card, Some(base));
    }
    let regressions = card.regressions(base);
    if !regressions.is_empty() {
        return Err(CliError::Server {
            exit: 7,
            msg: format!(
                "scorecard: {} metric(s) regressed past the noise band: {}",
                regressions.len(),
                regressions.join(", ")
            ),
        });
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let mut config = ServerConfig {
        addr: args.flag("addr").unwrap_or("127.0.0.1:0").to_string(),
        ..ServerConfig::default()
    };
    if let Some(t) = args.flag("threads") {
        let n: usize = t.parse().map_err(|_| usage("bad --threads"))?;
        // 0 or absurd requests are clamped with a warning, like
        // DATAREUSE_THREADS everywhere else in the workspace.
        config.threads = datareuse_core::sanitize_threads(n, "--threads").unwrap_or(0);
    }
    if let Some(q) = args.flag("queue-depth") {
        config.queue_depth = q.parse().map_err(|_| usage("bad --queue-depth"))?;
    }
    if let Some(c) = args.flag("cache-entries") {
        config.cache_entries = c.parse().map_err(|_| usage("bad --cache-entries"))?;
    }
    if let Some(l) = args.flag("loops") {
        config.loops = l.parse().map_err(|_| usage("bad --loops"))?;
    }
    if let Some(path) = args.flag("cache-snapshot") {
        config.snapshot_path = Some(std::path::PathBuf::from(path));
    } else if args.has("cache-snapshot") {
        return Err(usage("--cache-snapshot expects a file path"));
    }
    if let Some(d) = args.flag("deadline-ms") {
        let ms: u64 = d.parse().map_err(|_| usage("bad --deadline-ms"))?;
        config.default_deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(s) = args.flag("scrape-ms") {
        let ms: u64 = s.parse().map_err(|_| usage("bad --scrape-ms"))?;
        config.scrape_interval = std::time::Duration::from_millis(ms);
    }
    if let Some(p) = args.flag("slo-p99-ms") {
        let ms: u64 = p.parse().map_err(|_| usage("bad --slo-p99-ms"))?;
        config.slo.p99_latency = std::time::Duration::from_millis(ms);
    }
    if let Some(r) = args.flag("slo-hit-ratio") {
        let ratio: f64 = r.parse().map_err(|_| usage("bad --slo-hit-ratio"))?;
        if !(0.0..=1.0).contains(&ratio) {
            return Err(usage("--slo-hit-ratio must be in 0..=1"));
        }
        config.slo.min_hit_ratio = ratio;
    }
    if let Some(q) = args.flag("slo-queue") {
        let frac: f64 = q.parse().map_err(|_| usage("bad --slo-queue"))?;
        if !(0.0..=1.0).contains(&frac) {
            return Err(usage("--slo-queue must be in 0..=1"));
        }
        config.slo.max_queue_saturation = frac;
    }
    let series_path = args.flag("series-out").map(str::to_string);
    let obs = start_observability(args)?;
    // Serving always records metrics: the `stats`/`prom` ops and the
    // flight recorder must have data even without `--metrics FILE`.
    datareuse_obs::set_metrics_enabled(true);
    let trace_path = args.flag("trace-out").map(str::to_string);
    if trace_path.is_some() {
        datareuse_obs::set_tracing_enabled(true);
    }
    let server = Server::bind(&config)?;
    // The snapshot story goes to stderr (a rejected snapshot is a
    // warning, not a failure — the server just starts cold).
    match server.snapshot_load_report() {
        Some(Ok(Some(n))) => eprintln!("datareuse-serve: cache snapshot restored {n} entries"),
        Some(Ok(None)) => eprintln!("datareuse-serve: no cache snapshot yet, starting cold"),
        Some(Err(reason)) => {
            eprintln!("datareuse-serve: cache snapshot rejected: {reason}; starting cold");
        }
        None => {}
    }
    let addr = server.local_addr()?;
    // Single discovery line; port 0 callers parse the chosen port here.
    println!("datareuse-serve: listening on {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.run()?;
    obs.finish()?;
    if let Some(path) = &series_path {
        // The ring survives the drain; this is the full retained window
        // (up to SERIES_CAPACITY points), one NDJSON line per scrape.
        std::fs::write(path, datareuse_obs::series_ndjson())
            .map_err(|e| format!("cannot write series to `{path}`: {e}"))?;
        eprintln!(
            "series ({} points) written to {path}",
            datareuse_obs::series_len()
        );
    }
    if let Some(path) = &trace_path {
        // Spans already drained by `trace` ops are gone; this writes
        // whatever is still buffered at drain time.
        let doc = datareuse_obs::chrome_trace_json(&datareuse_obs::take_trace_events());
        std::fs::write(path, doc.to_string() + "\n")
            .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
        eprintln!("trace written to {path}");
    }
    eprintln!("datareuse-serve: drained, exiting");
    Ok(())
}

/// Kills the bench-serve child server if the bench bails out early; on
/// the happy path the bench shuts it down over the protocol first and
/// the kill is a no-op.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// `bench-serve`: the saturation load generator behind
/// `benchmarks/BENCH_serve_scaling.json`.
///
/// Spawns a real `datareuse serve` child process (so the server owns its
/// own fd budget — 10k server sockets plus 10k client sockets do not fit
/// one process under common `ulimit -n` settings), then climbs a
/// connection ladder toward `--connections`: at each rung it holds that
/// many open sockets and measures cache-hit request latency and
/// throughput over a sample of them. The artifact is one bench group
/// (`serve_scaling`, one bench per rung, `elements` = held connections)
/// plus a `saturation` object naming the rung with the highest observed
/// throughput. Any connect or request failure exits nonzero.
fn cmd_bench_serve(args: &Args) -> Result<(), CliError> {
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let connections: usize = args
        .flag("connections")
        .map(|v| v.parse().map_err(|_| usage("bad --connections")))
        .transpose()?
        .unwrap_or(10_000);
    if connections == 0 {
        return Err(usage("--connections must be positive"));
    }
    let out_path = args
        .flag("out")
        .unwrap_or("benchmarks/BENCH_serve_scaling.json")
        .to_string();
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut command = std::process::Command::new(exe);
    command.args(["serve", "--addr", "127.0.0.1:0", "--cache-entries", "1024"]);
    for flag in ["threads", "loops"] {
        if let Some(v) = args.flag(flag) {
            command.args([&format!("--{flag}"), v]);
        }
    }
    let mut child = command
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .stdin(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn server child: {e}"))?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut guard = ChildGuard(child);
    let mut discovery = String::new();
    BufReader::new(stdout)
        .read_line(&mut discovery)
        .map_err(|e| format!("cannot read server discovery line: {e}"))?;
    let addr = discovery
        .trim()
        .strip_prefix("datareuse-serve: listening on ")
        .ok_or_else(|| format!("unexpected server banner: {discovery:?}"))?
        .to_string();

    // The measured request: identical on every connection, so after the
    // warm-up below every sample is a cache hit — the bench measures the
    // serving loop, not the exploration engine.
    let request = b"{\"op\":\"explore\",\"kernel\":\"fir\"}\n";
    let connect = |tag: &str| -> Result<BufReader<TcpStream>, CliError> {
        let mut last = String::new();
        for attempt in 0..50 {
            match TcpStream::connect(&addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                    // Small buffer: only sampled connections ever read,
                    // and 10k of the default 8 KiB would be 80 MiB.
                    return Ok(BufReader::with_capacity(1024, s));
                }
                Err(e) => {
                    last = e.to_string();
                    // Listen backlog overflow under a connect burst:
                    // back off and retry rather than fail the bench.
                    std::thread::sleep(Duration::from_millis(2 * (attempt + 1)));
                }
            }
        }
        Err(CliError::Runtime(format!("connect ({tag}) failed: {last}")))
    };
    let exchange = |conn: &mut BufReader<TcpStream>| -> Result<u64, CliError> {
        let started = Instant::now();
        conn.get_mut()
            .write_all(request)
            .map_err(|e| format!("request write failed: {e}"))?;
        let mut line = String::new();
        conn.read_line(&mut line)
            .map_err(|e| format!("response read failed: {e}"))?;
        if !line.contains("\"ok\":true") {
            return Err(CliError::Runtime(format!("server refused: {}", line.trim())));
        }
        Ok(started.elapsed().as_nanos() as u64)
    };

    // Warm the cache so every measured request is a hit.
    let mut warm = connect("warmup")?;
    exchange(&mut warm)?;
    drop(warm);

    let rungs: Vec<usize> = [1, 10, 25, 50, 75, 100]
        .iter()
        .map(|pct| (connections * pct).div_ceil(100).max(1))
        .collect::<Vec<_>>()
        .into_iter()
        .scan(0usize, |prev, r| {
            let keep = r > *prev;
            *prev = r;
            keep.then_some(r)
        })
        .collect();
    let mut held: Vec<BufReader<TcpStream>> = Vec::with_capacity(connections);
    let mut benches = Vec::new();
    let mut best: Option<(usize, f64, u64)> = None; // (conns, rps, p99)
    const WAVES: usize = 3;
    const SAMPLE_CAP: usize = 512;
    for rung in rungs {
        while held.len() < rung {
            held.push(connect("ladder")?);
        }
        let sample = rung.min(SAMPLE_CAP);
        let mut latencies: Vec<u64> = Vec::with_capacity(sample * WAVES);
        let mut busy = Duration::ZERO;
        for _ in 0..WAVES {
            let wave = Instant::now();
            // Pipelined wave: all writes first, then the reads, so the
            // server sees `sample` concurrent requests, not a chain.
            for conn in held.iter_mut().take(sample) {
                conn.get_mut()
                    .write_all(request)
                    .map_err(|e| format!("wave write failed: {e}"))?;
            }
            for conn in held.iter_mut().take(sample) {
                let started = Instant::now();
                let mut line = String::new();
                conn.read_line(&mut line)
                    .map_err(|e| format!("wave read failed: {e}"))?;
                if !line.contains("\"ok\":true") {
                    return Err(CliError::Runtime(format!(
                        "server refused under load: {}",
                        line.trim()
                    )));
                }
                latencies.push(started.elapsed().as_nanos() as u64 + 1);
            }
            busy += wave.elapsed();
        }
        latencies.sort_unstable();
        let count = latencies.len();
        let pick = |q: f64| latencies[((count - 1) as f64 * q) as usize];
        let mean = latencies.iter().sum::<u64>() as f64 / count as f64;
        let rps = count as f64 / busy.as_secs_f64().max(1e-9);
        let p99 = pick(0.99);
        eprintln!(
            "bench-serve: {rung:>6} connections held, {count} requests, \
             p50 {:.1}us p99 {:.1}us, {rps:.0} req/s",
            pick(0.50) as f64 / 1e3,
            p99 as f64 / 1e3,
        );
        benches.push(Json::obj([
            ("id", Json::str(format!("conns_{rung:05}"))),
            ("batch", Json::UInt(1)),
            ("samples", Json::UInt(count as u64)),
            ("min_ns", Json::UInt(latencies[0])),
            ("median_ns", Json::UInt(pick(0.50))),
            ("mean_ns", Json::Num(mean)),
            ("p50_ns", Json::UInt(pick(0.50))),
            ("p99_ns", Json::UInt(p99)),
            ("elements", Json::UInt(rung as u64)),
        ]));
        if best.is_none_or(|(_, r, _)| rps > r) {
            best = Some((rung, rps, p99));
        }
    }
    // The server's own view of the ladder: open_connections should show
    // every held socket (plus this probe).
    let open_connections = {
        let conn = held.first_mut().expect("ladder has at least one rung");
        conn.get_mut()
            .write_all(b"{\"op\":\"stats\"}\n")
            .map_err(|e| format!("stats write failed: {e}"))?;
        let mut line = String::new();
        conn.read_line(&mut line)
            .map_err(|e| format!("stats read failed: {e}"))?;
        Json::parse(&line)
            .ok()
            .and_then(|doc| {
                doc.get("result")?
                    .get("derived")?
                    .get("open_connections")?
                    .as_u64()
            })
            .unwrap_or(0)
    };
    if (open_connections as usize) < connections {
        return Err(CliError::Runtime(format!(
            "server reports {open_connections} open connections, \
             expected at least {connections}"
        )));
    }
    let (sat_conns, sat_rps, sat_p99) = best.expect("at least one rung ran");
    let doc = Json::obj([
        ("group", Json::str("serve_scaling")),
        ("benches", Json::Arr(benches)),
        (
            "saturation",
            Json::obj([
                ("connections", Json::UInt(sat_conns as u64)),
                ("rps", Json::Num(sat_rps)),
                ("p99_ns", Json::UInt(sat_p99)),
                ("open_connections", Json::UInt(open_connections)),
            ]),
        ),
    ]);
    {
        let conn = held.first_mut().expect("still connected");
        conn.get_mut()
            .write_all(b"{\"op\":\"shutdown\"}\n")
            .map_err(|e| format!("shutdown write failed: {e}"))?;
        let mut line = String::new();
        let _ = conn.read_line(&mut line);
    }
    drop(held);
    let status = guard
        .0
        .wait()
        .map_err(|e| format!("server child did not exit: {e}"))?;
    if !status.success() {
        return Err(CliError::Runtime(format!("server child exited {status}")));
    }
    std::fs::write(&out_path, doc.to_string() + "\n")
        .map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    eprintln!(
        "bench-serve: saturation {sat_rps:.0} req/s at {sat_conns} connections \
         ({open_connections} open server-side); written to {out_path}"
    );
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), CliError> {
    let addr = args.flag("addr").ok_or_else(|| usage("missing --addr"))?;
    if args.positional.is_empty() {
        return Err(usage("missing request JSON (one per positional argument)"));
    }
    let mut client = Client::connect(addr)?;
    // The first structured error decides the exit code; later requests
    // still run so every response is printed.
    let mut first_error: Option<CliError> = None;
    for line in &args.positional {
        let response = client.send_raw(line)?;
        println!("{response}");
        let Ok(doc) = Json::parse(&response) else {
            continue;
        };
        if doc.get("ok").and_then(Json::as_bool) != Some(false) {
            // A successful `health` response still decides the exit
            // code: degraded → 5, failing → 6, so probes can alert on
            // the code alone.
            let status = doc
                .get("result")
                .filter(|r| r.get("checks").is_some())
                .and_then(|r| r.get("status"))
                .and_then(Json::as_str);
            let exit = match status {
                Some("degraded") => Some(5),
                Some("failing") => Some(6),
                _ => None,
            };
            if let (Some(exit), None) = (exit, &first_error) {
                first_error = Some(CliError::Server {
                    exit,
                    msg: format!(
                        "server health is {} (see response above)",
                        status.unwrap_or("unknown")
                    ),
                });
            }
            continue;
        }
        let error = doc.get("error");
        let code = error
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("");
        // A refusal's context: the server attaches its flight-recorder
        // tail to timeout/overloaded errors; surface it on stderr as
        // NDJSON so stdout stays one clean response per line.
        if let Some(tail) = error.and_then(|e| e.get("flight")).and_then(Json::as_array) {
            eprintln!("datareuse: flight-recorder tail ({} events):", tail.len());
            for event in tail {
                eprintln!("{event}");
            }
        }
        if first_error.is_none() {
            let exit = match code {
                "timeout" => 3,
                "overloaded" => 4,
                _ => 1,
            };
            first_error = Some(CliError::Server {
                exit,
                msg: format!("server reported `{code}` (see response above)"),
            });
        }
    }
    match first_error {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

fn run() -> Result<(), CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err(usage("missing command"));
    };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "kernels" => cmd_kernels(&args),
        "emit" => cmd_emit(&args),
        "explore" => cmd_explore(&args),
        "orders" => cmd_orders(&args),
        "report" => cmd_report(&args),
        "curve" => cmd_curve(&args),
        "codegen" => cmd_codegen(&args),
        "serve" => cmd_serve(&args),
        "bench-serve" => cmd_bench_serve(&args),
        "bench-corpus" => cmd_bench_corpus(&args),
        "scorecard" => cmd_scorecard(&args),
        "query" => cmd_query(&args),
        "top" => cmd_top(&args),
        other => Err(usage(format!("unknown command `{other}`"))),
    }
}

fn cmd_top(args: &Args) -> Result<(), CliError> {
    let addr = args.flag("addr").ok_or_else(|| usage("missing --addr"))?;
    let interval_ms: u64 = args
        .flag("interval-ms")
        .map(|v| v.parse().map_err(|_| usage("bad --interval-ms")))
        .transpose()?
        .unwrap_or(1000);
    // The dashboard's verdict strip judges the live window p99 against
    // the committed scorecard baseline when one is present in the
    // working directory; absence just renders a no-baseline strip.
    let baseline = std::fs::read_to_string("benchmarks/SCORECARD.json")
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| datareuse_obs::Scorecard::from_json(&doc).ok());
    top::run_top(&top::TopOptions {
        addr: addr.to_string(),
        interval: std::time::Duration::from_millis(interval_ms.max(50)),
        once: args.has("once"),
        ascii: args.has("ascii"),
        baseline,
    })
    .map_err(CliError::Runtime)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(msg)) => {
            eprintln!("datareuse: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Server { exit, msg }) => {
            eprintln!("datareuse: {msg}");
            ExitCode::from(exit)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("datareuse: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_separate_positionals_and_flags() {
        let a = Args::parse(&argv(&["me", "--array", "Old", "--simulate", "--depth", "3"]));
        assert_eq!(a.positional, vec!["me"]);
        assert_eq!(a.flag("array"), Some("Old"));
        assert_eq!(a.flag("depth"), Some("3"));
        assert!(a.has("simulate"));
        assert!(!a.has("array-x"));
        assert_eq!(a.flag("simulate"), None);
    }

    #[test]
    fn flags_do_not_swallow_following_flags() {
        let a = Args::parse(&argv(&["--simulate", "--array", "Old"]));
        assert!(a.has("simulate"));
        assert_eq!(a.flag("array"), Some("Old"));
    }

    #[test]
    fn builtin_kernels_all_load() {
        for (name, _) in BUILTINS {
            let p = load_kernel(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!p.nests().is_empty(), "{name} has nests");
        }
    }

    #[test]
    fn default_array_prefers_most_read_signal() {
        let p = load_kernel("conv2d").unwrap();
        // image: 9 reads/iteration vs coef: 9 (same count) vs out: writes.
        let pick = default_array(&p).unwrap();
        assert!(pick == "image" || pick == "coef");
    }

    #[test]
    fn unknown_kernel_reports_path_error() {
        let e = load_kernel("/no/such/file.dr").unwrap_err();
        assert!(e.contains("cannot read"));
    }

    #[test]
    fn usage_and_runtime_errors_are_distinct() {
        assert!(matches!(usage("x"), CliError::Usage(_)));
        let runtime: CliError = "y".into();
        assert!(matches!(runtime, CliError::Runtime(_)));
    }
}
