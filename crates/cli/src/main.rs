//! `datareuse` — the prototype exploration tool of the paper, as a CLI.
//!
//! ```text
//! datareuse kernels
//! datareuse emit    <kernel>
//! datareuse explore <kernel> --array NAME [--depth N] [--simulate] [--workingset]
//!                   [--gnuplot FILE] [--json] [--metrics FILE] [--progress]
//! datareuse curve   <kernel> --array NAME --sizes 8,64,512 [--policy opt|opt-bypass]
//! datareuse orders  <kernel> --array NAME [--limit N]
//! datareuse codegen <kernel> --array NAME [--pair O,I] [--strategy max|partial:G|bypass:G]
//!                   [--selfcheck] [--single-assignment] [--adopt] [--band DEPTH]
//! datareuse report  <kernel> [--json] [--metrics FILE] [--progress]   # all signals
//! ```
//!
//! `<kernel>` is a built-in name (see `datareuse kernels`) or a path to a
//! `.dr` DSL file.
//!
//! `--metrics FILE` enables the observability registry for the run and
//! writes a `datareuse-metrics-v1` JSON snapshot (span timings, event
//! counters, worker-load distribution) to FILE; `--progress` narrates the
//! live counters to stderr once per second while the command runs.

use std::process::ExitCode;

use datareuse_codegen::{
    emit_band_copy, emit_program, emit_selfcheck, emit_selfcheck_adopt, emit_selfcheck_band,
    emit_transformed, emit_transformed_adopt, gnuplot_script, Series, Strategy, TemplateOptions,
};
use datareuse_core::{
    explore_orders, explore_program, explore_signal, ExplorationReport, ExploreOptions,
};
use datareuse_kernels::{Conv2d, Downsample, Fir, MatMul, MotionEstimation, Sobel, Susan};
use datareuse_loopir::{parse_program, read_addresses, AccessKind, Program};
use datareuse_memmodel::{BitCount, MemoryTechnology};
use datareuse_trace::{CurvePolicy, ReuseCurve, TraceStats};

const BUILTINS: &[(&str, &str)] = &[
    ("me", "full-search motion estimation, QCIF, n=m=8 (paper Fig. 3)"),
    ("me-small", "motion estimation, 32x32 frame, n=m=4"),
    ("susan", "SUSAN 37-pixel circular mask, QCIF (paper Sec. 6.4)"),
    ("susan-small", "SUSAN on a 24x32 image"),
    ("susan-unfolded", "SUSAN pre-processed to a series of loops"),
    ("conv2d", "3x3 convolution over a 64x64 image"),
    ("matmul", "32x32x32 matrix multiply"),
    ("sobel", "Sobel operator over a 64x64 image"),
    ("downsample", "4:1 box downsampler over a 64x64 image"),
    ("fir", "64-tap FIR filter over 1024 samples"),
];

fn load_kernel(name: &str) -> Result<Program, String> {
    match name {
        "me" => Ok(MotionEstimation::QCIF.program()),
        "me-small" => Ok(MotionEstimation::SMALL.program()),
        "susan" => Ok(Susan::QCIF.program()),
        "susan-small" => Ok(Susan::SMALL.program()),
        "susan-unfolded" => Ok(Susan::QCIF.unfolded_program()),
        "conv2d" => Ok(Conv2d {
            height: 64,
            width: 64,
            tap_rows: 3,
            tap_cols: 3,
        }
        .program()),
        "matmul" => Ok(MatMul::square(32).program()),
        "sobel" => Ok(Sobel {
            height: 64,
            width: 64,
        }
        .program()),
        "downsample" => Ok(Downsample {
            height: 64,
            width: 64,
            factor: 4,
        }
        .program()),
        "fir" => Ok(Fir::AUDIO.program()),
        path => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read `{path}`: {e}"))?;
            parse_program(&src).map_err(|e| format!("{path}:{e}"))
        }
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| (*v).clone());
                if value.is_some() {
                    it.next();
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Self { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn default_array(program: &Program) -> Option<String> {
    // The most-read array is the interesting signal by default.
    let mut best: Option<(String, u64)> = None;
    for decl in program.arrays() {
        let reads = datareuse_loopir::trace_len(
            program,
            decl.name(),
            datareuse_loopir::TraceFilter::READS,
        );
        if reads > 0 && best.as_ref().is_none_or(|(_, r)| reads > *r) {
            best = Some((decl.name().to_string(), reads));
        }
    }
    best.map(|(n, _)| n)
}

fn pick_array(args: &Args, program: &Program) -> Result<String, String> {
    match args.flag("array") {
        Some(a) => Ok(a.to_string()),
        None => default_array(program).ok_or_else(|| "program has no read accesses".to_string()),
    }
}

fn cmd_kernels() {
    println!("built-in kernels:");
    for (name, desc) in BUILTINS {
        println!("  {name:<16} {desc}");
    }
}

fn cmd_emit(args: &Args) -> Result<(), String> {
    let program = load_kernel(args.positional.first().ok_or("missing kernel")?)?;
    print!("{}", emit_program(&program));
    Ok(())
}

/// Enables the metrics registry when `--metrics`/`--progress` is given.
/// Returns the snapshot destination and the live narrator handle (kept
/// alive by the caller for the duration of the command).
fn start_observability(args: &Args) -> (Option<String>, Option<datareuse_obs::Progress>) {
    let metrics_path = args.flag("metrics").map(str::to_string);
    if metrics_path.is_some() {
        datareuse_obs::set_metrics_enabled(true);
    }
    let progress = args
        .has("progress")
        .then(|| datareuse_obs::Progress::start(std::time::Duration::from_secs(1)));
    (metrics_path, progress)
}

/// Writes the metrics snapshot accumulated so far to `path`.
fn write_metrics(path: &str) -> Result<(), String> {
    let json = datareuse_obs::snapshot().to_json().to_string();
    std::fs::write(path, json + "\n")
        .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))?;
    eprintln!("metrics written to {path}");
    Ok(())
}

fn cmd_explore(args: &Args) -> Result<(), String> {
    let program = load_kernel(args.positional.first().ok_or("missing kernel")?)?;
    let array = pick_array(args, &program)?;
    let mut opts = ExploreOptions::default();
    if let Some(d) = args.flag("depth") {
        opts.max_chain_depth = d.parse().map_err(|_| "bad --depth")?;
    }
    let (metrics_path, progress) = start_observability(args);
    let ex = explore_signal(&program, &array, &opts).map_err(|e| e.to_string())?;
    let tech = MemoryTechnology::new();
    let report = ExplorationReport::build(&ex, &opts, &tech, &BitCount);
    if args.has("json") {
        println!("{}", report.to_json());
        drop(progress);
        if let Some(path) = &metrics_path {
            write_metrics(path)?;
        }
        return Ok(());
    }
    print!("{report}");
    let front = ex.pareto(&opts, &tech, &BitCount);
    // The working-set and simulation views replay the same read trace;
    // generate it once instead of once per view.
    let trace = (args.has("workingset") || args.has("simulate"))
        .then(|| read_addresses(&program, &array));
    if args.has("workingset") {
        let trace = trace.as_deref().expect("trace generated above");
        println!("\nworking-set profile (window, avg, peak):");
        for w in [64u64, 256, 1024, 4096] {
            let ws = datareuse_trace::working_set_profile(trace, w);
            println!("  {:>6}  {:>10.1}  {:>8}", ws.window, ws.average, ws.peak);
        }
    }
    if args.has("simulate") {
        let trace = trace.as_deref().expect("trace generated above");
        let stats = TraceStats::compute(trace);
        println!(
            "\nsimulation: {} accesses, footprint {}, average reuse {:.1}",
            stats.accesses,
            stats.footprint,
            stats.average_reuse()
        );
        let sizes: Vec<u64> = ex.candidates.iter().map(|c| c.size).collect();
        let curve = ReuseCurve::simulate(trace, sizes, CurvePolicy::Optimal);
        println!("Belady-optimal reuse factors at the analytical sizes:");
        for p in curve.points() {
            println!("  {:>8}  {:>8.2}", p.size, p.reuse_factor);
        }
    }
    if let Some(path) = args.flag("gnuplot") {
        let analytic: Vec<(f64, f64)> = ex
            .reuse_factor_points()
            .into_iter()
            .map(|(s, f)| (s as f64, f))
            .collect();
        let pareto: Vec<(f64, f64)> = front.iter().map(|p| (p.size.max(1.0), p.power)).collect();
        let script = gnuplot_script(
            &format!("Data reuse exploration: {array}"),
            "copy-candidate size [elements]",
            "F_R / normalized power",
            true,
            &[
                Series::new("analytical F_R", analytic).with_style("points pt 7"),
                Series::new("Pareto power", pareto).with_style("linespoints"),
            ],
        );
        std::fs::write(path, script).map_err(|e| e.to_string())?;
        println!("\ngnuplot script written to {path}");
    }
    drop(progress);
    if let Some(path) = &metrics_path {
        write_metrics(path)?;
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let program = load_kernel(args.positional.first().ok_or("missing kernel")?)?;
    let opts = ExploreOptions::default();
    let tech = MemoryTechnology::new();
    let (metrics_path, progress) = start_observability(args);
    let explorations = explore_program(&program, &opts).map_err(|e| e.to_string())?;
    if args.has("json") {
        let docs: Vec<String> = explorations
            .iter()
            .map(|ex| ExplorationReport::build(ex, &opts, &tech, &BitCount).to_json())
            .collect();
        println!("[{}]", docs.join(","));
    } else {
        for (i, ex) in explorations.iter().enumerate() {
            if i > 0 {
                println!();
            }
            let report = ExplorationReport::build(ex, &opts, &tech, &BitCount);
            print!("{report}");
        }
    }
    drop(progress);
    if let Some(path) = &metrics_path {
        write_metrics(path)?;
    }
    Ok(())
}

fn cmd_orders(args: &Args) -> Result<(), String> {
    let program = load_kernel(args.positional.first().ok_or("missing kernel")?)?;
    let array = pick_array(args, &program)?;
    let limit: usize = args
        .flag("limit")
        .map(|v| v.parse().map_err(|_| "bad --limit"))
        .transpose()?
        .unwrap_or(24);
    let tech = MemoryTechnology::new();
    let orders = explore_orders(
        &program,
        &array,
        &ExploreOptions::default(),
        &tech,
        &BitCount,
        limit,
    )
    .map_err(|e| e.to_string())?;
    println!("loop orderings for `{array}` ranked by best normalized power:");
    for o in &orders {
        println!(
            "  [{}]  power {:.4} at {} on-chip elements",
            o.loop_names.join(", "),
            o.best_power,
            o.best_words
        );
    }
    Ok(())
}

fn cmd_curve(args: &Args) -> Result<(), String> {
    let program = load_kernel(args.positional.first().ok_or("missing kernel")?)?;
    let array = pick_array(args, &program)?;
    let sizes: Vec<u64> = args
        .flag("sizes")
        .ok_or("missing --sizes")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad size `{s}`")))
        .collect::<Result<_, _>>()?;
    let policy = match args.flag("policy") {
        None | Some("opt") => CurvePolicy::Optimal,
        Some("opt-bypass") => CurvePolicy::OptimalBypass,
        Some(other) => return Err(format!("unknown policy `{other}`")),
    };
    let trace = read_addresses(&program, &array);
    let curve = ReuseCurve::simulate(&trace, sizes, policy);
    print!("{}", curve.to_gnuplot());
    Ok(())
}

fn cmd_codegen(args: &Args) -> Result<(), String> {
    let program = load_kernel(args.positional.first().ok_or("missing kernel")?)?;
    let array = pick_array(args, &program)?;
    let (nest_idx, access_idx) = program
        .nests()
        .iter()
        .enumerate()
        .find_map(|(ni, nest)| {
            nest.accesses()
                .iter()
                .position(|a| a.array() == array && a.kind() == AccessKind::Read)
                .map(|ai| (ni, ai))
        })
        .ok_or_else(|| format!("no read access to `{array}`"))?;
    let depth = program.nests()[nest_idx].depth();
    let (outer, inner) = match args.flag("pair") {
        Some(p) => {
            let parts: Vec<&str> = p.split(',').collect();
            if parts.len() != 2 {
                return Err("--pair expects O,I".into());
            }
            (
                parts[0].trim().parse().map_err(|_| "bad --pair")?,
                parts[1].trim().parse().map_err(|_| "bad --pair")?,
            )
        }
        None => (depth.saturating_sub(2), depth.saturating_sub(1)),
    };
    let strategy = match args.flag("strategy") {
        None | Some("max") => Strategy::MaxReuse,
        Some(s) => {
            if let Some(g) = s.strip_prefix("partial:") {
                Strategy::Partial {
                    gamma: g.parse().map_err(|_| "bad gamma")?,
                }
            } else if let Some(g) = s.strip_prefix("bypass:") {
                Strategy::PartialBypass {
                    gamma: g.parse().map_err(|_| "bad gamma")?,
                }
            } else {
                return Err(format!("unknown strategy `{s}`"));
            }
        }
    };
    let opts = TemplateOptions {
        strategy,
        single_assignment: args.has("single-assignment"),
    };
    if let Some(depth) = args.flag("band") {
        let depth: usize = depth.parse().map_err(|_| "bad --band depth")?;
        let code = if args.has("selfcheck") {
            emit_selfcheck_band(&program, nest_idx, access_idx, depth)
        } else {
            emit_band_copy(&program, nest_idx, access_idx, depth)
        }
        .map_err(|e| e.to_string())?;
        print!("{code}");
        return Ok(());
    }
    let code = match (args.has("selfcheck"), args.has("adopt")) {
        (true, false) => emit_selfcheck(&program, nest_idx, access_idx, outer, inner, opts),
        (true, true) => emit_selfcheck_adopt(&program, nest_idx, access_idx, outer, inner, opts),
        (false, true) => emit_transformed_adopt(&program, nest_idx, access_idx, outer, inner, opts),
        (false, false) => emit_transformed(&program, nest_idx, access_idx, outer, inner, opts),
    }
    .map_err(|e| e.to_string())?;
    print!("{code}");
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err(
            "usage: datareuse <kernels|emit|explore|report|orders|curve|codegen> ...".into(),
        );
    };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "kernels" => {
            cmd_kernels();
            Ok(())
        }
        "emit" => cmd_emit(&args),
        "explore" => cmd_explore(&args),
        "orders" => cmd_orders(&args),
        "report" => cmd_report(&args),
        "curve" => cmd_curve(&args),
        "codegen" => cmd_codegen(&args),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("datareuse: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_separate_positionals_and_flags() {
        let a = Args::parse(&argv(&["me", "--array", "Old", "--simulate", "--depth", "3"]));
        assert_eq!(a.positional, vec!["me"]);
        assert_eq!(a.flag("array"), Some("Old"));
        assert_eq!(a.flag("depth"), Some("3"));
        assert!(a.has("simulate"));
        assert!(!a.has("array-x"));
        assert_eq!(a.flag("simulate"), None);
    }

    #[test]
    fn flags_do_not_swallow_following_flags() {
        let a = Args::parse(&argv(&["--simulate", "--array", "Old"]));
        assert!(a.has("simulate"));
        assert_eq!(a.flag("array"), Some("Old"));
    }

    #[test]
    fn builtin_kernels_all_load() {
        for (name, _) in BUILTINS {
            let p = load_kernel(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!p.nests().is_empty(), "{name} has nests");
        }
    }

    #[test]
    fn default_array_prefers_most_read_signal() {
        let p = load_kernel("conv2d").unwrap();
        // image: 9 reads/iteration vs coef: 9 (same count) vs out: writes.
        let pick = default_array(&p).unwrap();
        assert!(pick == "image" || pick == "coef");
    }

    #[test]
    fn unknown_kernel_reports_path_error() {
        let e = load_kernel("/no/such/file.dr").unwrap_err();
        assert!(e.contains("cannot read"));
    }
}
