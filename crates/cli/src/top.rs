//! `datareuse top` — a live terminal dashboard over a running server.
//!
//! Polls `stats {"series":true}` on an interval and redraws one frame:
//! headline counters, the cache hit ratio, queue depth, and sparklines
//! of the scraped metrics series (requests per window, window p50/p99
//! latency). Everything is plain std — the "UI" is ANSI clear-screen
//! plus eight-level bar characters, with `--ascii` downgrading to a
//! portable ramp so frames diff cleanly in scripts and golden tests.
//! `--once` renders a single frame without touching the screen, which
//! is what `scripts/verify.sh` pins.

use datareuse_obs::{Json, Scorecard, Verdict};
use datareuse_server::Client;

/// How `datareuse top` was asked to behave.
pub struct TopOptions {
    /// Server to poll.
    pub addr: String,
    /// Delay between polls.
    pub interval: std::time::Duration,
    /// Render one frame and exit (no screen clearing).
    pub once: bool,
    /// Use the ASCII bar ramp instead of Unicode blocks.
    pub ascii: bool,
    /// Committed scorecard baseline for the frame's verdict strip.
    pub baseline: Option<Scorecard>,
}

/// Eight-level ramps, lowest to highest.
const BLOCKS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
const ASCII: [char; 8] = ['_', '.', ':', '-', '=', '+', '*', '#'];

/// Scales `values` into an eight-level bar string. An all-zero series
/// renders as all-lowest bars rather than dividing by zero.
fn sparkline(values: &[u64], ascii: bool) -> String {
    let ramp = if ascii { &ASCII } else { &BLOCKS };
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| ramp[((v * 7 + max / 2) / max) as usize % 8])
        .collect()
}

/// The most recent `width` points of one per-point metric, oldest first.
fn tail(values: &[u64], width: usize) -> &[u64] {
    &values[values.len().saturating_sub(width)..]
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}ms", ns as f64 / 1e6)
}

/// Fixed-unit byte formatting: always megabytes with two decimals, so
/// golden-frame normalization (digits → `N`) is stable regardless of
/// magnitude.
fn fmt_mb(bytes: f64) -> String {
    format!("{:.2}MB", bytes / 1e6)
}

/// Extracts the per-point series a frame plots: requests per window and
/// the window p50/p99 of cold-request latency.
struct SeriesView {
    requests: Vec<u64>,
    p50_ns: Vec<u64>,
    p99_ns: Vec<u64>,
    alloc_total: Vec<u64>,
    unix_ms: Vec<u64>,
}

impl SeriesView {
    fn from_stats(stats: &Json) -> SeriesView {
        let mut view = SeriesView {
            requests: Vec::new(),
            p50_ns: Vec::new(),
            p99_ns: Vec::new(),
            alloc_total: Vec::new(),
            unix_ms: Vec::new(),
        };
        let points = stats
            .get("series")
            .and_then(|s| s.get("points"))
            .and_then(Json::as_array)
            .unwrap_or(&[]);
        for p in points {
            let counter = |name: &str| {
                p.get("counters")
                    .and_then(|c| c.get(name))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            let hist = |field: &str| {
                p.get("hists")
                    .and_then(|h| h.get("serve_latency_cold_ns"))
                    .and_then(|h| h.get(field))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            view.requests.push(counter("serve_requests"));
            view.p50_ns.push(hist("p50"));
            view.p99_ns.push(hist("p99"));
            view.alloc_total.push(
                p.get("gauges")
                    .and_then(|g| g.get("alloc_bytes_total"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            );
            view.unix_ms
                .push(p.get("unix_ms").and_then(Json::as_u64).unwrap_or(0));
        }
        view
    }

    /// Allocation rate in bytes/second over the last scrape window:
    /// the `alloc_bytes_total` gauge carries cumulative allocation
    /// traffic, so diffing the two newest points and dividing by their
    /// wall-clock gap yields the live rate. Zero until two points exist.
    fn alloc_rate(&self) -> f64 {
        let n = self.alloc_total.len();
        if n < 2 {
            return 0.0;
        }
        let bytes = self.alloc_total[n - 1].saturating_sub(self.alloc_total[n - 2]) as f64;
        let ms = self.unix_ms[n - 1].saturating_sub(self.unix_ms[n - 2]).max(1) as f64;
        bytes * 1e3 / ms
    }
}

/// Renders one dashboard frame from a parsed `stats` result document.
/// Pure so tests (and the golden gate) can pin it without a server.
/// With a scorecard `baseline`, the last line is a one-line verdict
/// strip judging the live window p99 against the committed
/// `serve_p99_ns` metric.
pub fn render_frame(addr: &str, stats: &Json, ascii: bool, baseline: Option<&Scorecard>) -> String {
    let derived = |name: &str| stats.get("derived").and_then(|d| d.get(name));
    let num = |name: &str| derived(name).and_then(Json::as_u64).unwrap_or(0);
    let counter = |name: &str| {
        stats
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let ratio = derived("cache_hit_ratio").and_then(Json::as_f64).unwrap_or(0.0);
    let view = SeriesView::from_stats(stats);
    let width = 48;
    let mut out = String::new();
    out.push_str(&format!("datareuse top — {addr}\n"));
    out.push_str(&format!(
        "requests {:>8}   errors {:>6}   timeouts {:>6}   overloaded {:>6}\n",
        num("requests_served"),
        counter("serve_errors"),
        counter("serve_timeouts"),
        counter("serve_overloaded"),
    ));
    out.push_str(&format!(
        "cache    hits {:>6}   misses {:>6}   hit ratio {:>5.1}%\n",
        counter("serve_cache_hits"),
        counter("serve_cache_misses"),
        ratio * 100.0,
    ));
    out.push_str(&format!(
        "queue    depth {:>5} now, {:>5} peak\n",
        num("queue_depth"),
        num("queue_depth_max"),
    ));
    let (last_p50, last_p99) = (
        view.p50_ns.last().copied().unwrap_or(0),
        view.p99_ns.last().copied().unwrap_or(0),
    );
    out.push_str(&format!(
        "latency  window p50 {:>10}   p99 {:>10}\n",
        fmt_ms(last_p50),
        fmt_ms(last_p99),
    ));
    if view.requests.is_empty() {
        out.push_str("series   (no points scraped yet)\n");
    } else {
        out.push_str(&format!(
            "req/win  {}\n",
            sparkline(tail(&view.requests, width), ascii)
        ));
        out.push_str(&format!(
            "p50      {}\n",
            sparkline(tail(&view.p50_ns, width), ascii)
        ));
        out.push_str(&format!(
            "p99      {}\n",
            sparkline(tail(&view.p99_ns, width), ascii)
        ));
        out.push_str(&format!("points   {}\n", view.requests.len()));
    }
    let gauge = |name: &str| {
        stats
            .get("gauges")
            .and_then(|g| g.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    out.push_str(&format!(
        "memory   live {:>10}   peak {:>10}   alloc {:>10}/s\n",
        fmt_mb(gauge("alloc_live_bytes") as f64),
        fmt_mb(gauge("alloc_peak_bytes") as f64),
        fmt_mb(view.alloc_rate()),
    ));
    match baseline.and_then(|b| b.metric("serve_p99_ns")) {
        Some(base) => {
            let verdict = Verdict::judge(last_p99 as f64, base.value, base.noise, base.direction);
            out.push_str(&format!(
                "scorecard p99 {} vs baseline ({} metrics)\n",
                verdict.word(),
                baseline.map_or(0, |b| b.metrics.len()),
            ));
        }
        None => out.push_str("scorecard (no baseline)\n"),
    }
    out
}

/// RAII guard for the live dashboard's terminal state. Construction
/// switches to the alternate screen and hides the cursor; `Drop`
/// restores both, so a panic mid-redraw (or any early return) cannot
/// strand the user's terminal on the alternate screen with the cursor
/// hidden. `--once` never constructs one, which keeps one-shot output
/// byte-identical to what it was before the guard existed.
struct TermGuard;

impl TermGuard {
    /// Enter the alternate screen and hide the cursor, returning the
    /// guard whose `Drop` undoes both.
    fn activate() -> TermGuard {
        print!("\x1b[?1049h\x1b[?25l");
        let _ = std::io::Write::flush(&mut std::io::stdout());
        TermGuard
    }

    /// The restore sequence `Drop` writes: leave the alternate screen,
    /// show the cursor.
    fn restore_bytes() -> &'static str {
        "\x1b[?1049l\x1b[?25h"
    }
}

impl Drop for TermGuard {
    fn drop(&mut self) {
        print!("{}", TermGuard::restore_bytes());
        let _ = std::io::Write::flush(&mut std::io::stdout());
    }
}

/// Drives the dashboard: poll, render, repeat (or once).
///
/// # Errors
///
/// When the server cannot be reached or answers with a malformed or
/// error response.
pub fn run_top(opts: &TopOptions) -> Result<(), String> {
    let mut client = Client::connect(&opts.addr)?;
    // Live mode owns the terminal for the duration: the guard flips to
    // the alternate screen now and restores it on every exit path —
    // error returns and panics included.
    let _guard = if opts.once { None } else { Some(TermGuard::activate()) };
    loop {
        let response = client.send_raw(r#"{"op":"stats","series":true}"#)?;
        let doc = Json::parse(&response).map_err(|e| format!("malformed stats response: {e}"))?;
        if doc.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("stats request failed: {response}"));
        }
        let stats = doc.get("result").ok_or("stats response without result")?;
        let frame = render_frame(&opts.addr, stats, opts.ascii, opts.baseline.as_ref());
        if opts.once {
            print!("{frame}");
            return Ok(());
        }
        // Clear + home, then the frame; redraw-in-place keeps the
        // terminal scrollback usable after Ctrl-C.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        std::io::stdout().flush().map_err(|e| e.to_string())?;
        std::thread::sleep(opts.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparklines_scale_to_the_window_maximum() {
        assert_eq!(sparkline(&[0, 7], true), "_#");
        assert_eq!(sparkline(&[0, 1, 2, 3, 4, 5, 6, 7], true), "_.:-=+*#");
        // All-zero input must not divide by zero.
        assert_eq!(sparkline(&[0, 0, 0], true), "___");
        assert_eq!(sparkline(&[5], false), "\u{2588}");
    }

    #[test]
    fn a_frame_renders_from_a_stats_document() {
        let stats = Json::parse(
            r#"{"counters":{"serve_cache_hits":3,"serve_cache_misses":1,
                "serve_errors":0,"serve_timeouts":0,"serve_overloaded":0},
                "derived":{"requests_served":9,"cache_hit_ratio":0.75,
                "queue_depth":0,"queue_depth_max":2},
                "series":{"schema":"datareuse-series-v1","capacity":256,"points":[
                  {"seq":0,"counters":{"serve_requests":4},
                   "hists":{"serve_latency_cold_ns":{"count":4,"p50":1000,"p99":2000}}},
                  {"seq":1,"counters":{"serve_requests":5},
                   "hists":{"serve_latency_cold_ns":{"count":5,"p50":1500,"p99":9000}}}]}}"#,
        )
        .unwrap();
        let frame = render_frame("127.0.0.1:1", &stats, true, None);
        assert!(frame.contains("requests        9"), "frame:\n{frame}");
        assert!(frame.contains("hit ratio  75.0%"), "frame:\n{frame}");
        assert!(frame.contains("p99      "), "frame:\n{frame}");
        assert!(frame.contains("points   2"), "frame:\n{frame}");
        // A document without memory gauges renders an all-zero memory
        // panel rather than dropping the line.
        assert!(
            frame.contains("memory   live     0.00MB   peak     0.00MB   alloc     0.00MB/s"),
            "frame:\n{frame}"
        );
        assert!(frame.ends_with("scorecard (no baseline)\n"), "frame:\n{frame}");
        // ASCII frames stay ANSI-free so golden diffs are stable.
        assert!(!frame.contains('\x1b'));
    }

    #[test]
    fn the_memory_panel_shows_live_peak_and_the_windowed_alloc_rate() {
        // Two points one second apart with 5 MB of allocation traffic
        // between them → a 5.00MB/s rate; live/peak come from the
        // top-level gauges.
        let stats = Json::parse(
            r#"{"gauges":{"alloc_live_bytes":12340000,"alloc_peak_bytes":56780000},
                "series":{"points":[
                  {"seq":0,"unix_ms":1000,"counters":{"serve_requests":1},
                   "gauges":{"alloc_bytes_total":1000000},
                   "hists":{"serve_latency_cold_ns":{"count":1,"p50":1,"p99":1}}},
                  {"seq":1,"unix_ms":2000,"counters":{"serve_requests":1},
                   "gauges":{"alloc_bytes_total":6000000},
                   "hists":{"serve_latency_cold_ns":{"count":1,"p50":1,"p99":1}}}]}}"#,
        )
        .unwrap();
        let frame = render_frame("x", &stats, true, None);
        assert!(
            frame.contains("memory   live    12.34MB   peak    56.78MB   alloc     5.00MB/s"),
            "frame:\n{frame}"
        );
        // Fewer than two points → no window to rate over.
        let one = Json::parse(
            r#"{"series":{"points":[
                {"seq":0,"unix_ms":1000,"counters":{"serve_requests":1},
                 "gauges":{"alloc_bytes_total":1000000},
                 "hists":{"serve_latency_cold_ns":{"count":1,"p50":1,"p99":1}}}]}}"#,
        )
        .unwrap();
        let frame = render_frame("x", &one, true, None);
        assert!(frame.contains("alloc     0.00MB/s"), "frame:\n{frame}");
    }

    #[test]
    fn the_terminal_guard_restore_sequence_reenables_the_main_screen_and_cursor() {
        // The Drop guard must leave the alternate screen and re-show
        // the cursor — the two sequences `activate` flipped on.
        let restore = TermGuard::restore_bytes();
        assert!(restore.contains("\x1b[?1049l"), "leaves alternate screen");
        assert!(restore.contains("\x1b[?25h"), "re-shows cursor");
    }

    #[test]
    fn a_frame_without_series_points_says_so() {
        let stats = Json::parse(r#"{"derived":{"requests_served":0}}"#).unwrap();
        let frame = render_frame("x", &stats, true, None);
        assert!(frame.contains("(no points scraped yet)"));
    }

    #[test]
    fn the_verdict_strip_judges_the_live_p99_against_the_baseline() {
        let stats = Json::parse(
            r#"{"series":{"points":[
                {"seq":0,"counters":{"serve_requests":1},
                 "hists":{"serve_latency_cold_ns":{"count":1,"p50":900,"p99":1000}}}]}}"#,
        )
        .unwrap();
        let baseline = |p99: f64| {
            Scorecard::from_json(
                &Json::parse(&format!(
                    r#"{{"schema":"datareuse-scorecard-v1","metrics":[
                        {{"id":"serve_p99_ns","value":{p99},"noise":0.5,
                          "direction":"lower"}},
                        {{"id":"other","value":1,"noise":0.1,"direction":"higher"}}]}}"#
                ))
                .unwrap(),
            )
            .unwrap()
        };
        // Live p99 = 1000ns. Baseline 10000 → better; 1000 → within
        // noise; 100 → regressed. The metric count covers the whole card.
        for (base_p99, verdict) in
            [(10000.0, "better"), (1000.0, "within-noise"), (100.0, "regressed")]
        {
            let card = baseline(base_p99);
            let frame = render_frame("x", &stats, true, Some(&card));
            let want = format!("scorecard p99 {verdict} vs baseline (2 metrics)\n");
            assert!(frame.ends_with(&want), "want {want:?} in frame:\n{frame}");
        }
        // A baseline without the p99 metric degrades to the no-baseline strip.
        let empty = Scorecard { metrics: Vec::new() };
        let frame = render_frame("x", &stats, true, Some(&empty));
        assert!(frame.ends_with("scorecard (no baseline)\n"), "frame:\n{frame}");
    }
}
