//! Black-box tests of `datareuse serve` / `datareuse query`.
//!
//! Every test spawns the real binary with `--addr 127.0.0.1:0`, reads
//! the `listening on` discovery line for the ephemeral port, talks to
//! the daemon over real sockets, and shuts it down gracefully.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use datareuse_core::Json;

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn(extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_datareuse"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("discovery line");
        let addr = line
            .trim()
            .strip_prefix("datareuse-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected discovery line: {line}"))
            .to_string();
        ServerProc { child, addr }
    }

    /// Sends `shutdown` and asserts the daemon drains and exits 0
    /// within a timeout.
    fn shutdown(mut self) {
        let responses = exchange(&self.addr, &[r#"{"op":"shutdown"}"#]);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.child.try_wait().expect("wait works") {
                Some(status) => {
                    assert_eq!(status.code(), Some(0), "graceful shutdown exits 0");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not exit within the drain timeout");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// Opens one connection, sends each line, returns the parsed responses.
fn exchange(addr: &str, lines: &[&str]) -> Vec<Json> {
    let stream = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut out = Vec::new();
    for line in lines {
        writeln!(writer, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        out.push(Json::parse(&response).expect("response parses"));
    }
    out
}

fn one_shot_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "one-shot run succeeds");
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn concurrent_clients_get_results_byte_identical_to_the_one_shot_cli() {
    let expected = one_shot_stdout(&["explore", "fir", "--json"]);
    let expected = expected.trim();
    let server = ServerProc::spawn(&["--threads", "2"]);
    let addr = server.addr.clone();
    let handles: Vec<_> = (0..4)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let request = format!(r#"{{"op":"explore","kernel":"fir","id":{k}}}"#);
                let responses = exchange(&addr, &[&request]);
                let doc = &responses[0];
                assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
                assert_eq!(doc.get("id").and_then(Json::as_u64), Some(k));
                doc.get("result").expect("result present").to_string()
            })
        })
        .collect();
    for handle in handles {
        let result = handle.join().expect("client thread");
        assert_eq!(result, expected, "server result differs from CLI output");
    }
    server.shutdown();
}

#[test]
fn repeated_queries_hit_the_cache_and_the_counters_prove_it() {
    let metrics = std::env::temp_dir().join(format!(
        "datareuse_serve_metrics_{}.json",
        std::process::id()
    ));
    let server = ServerProc::spawn(&[
        "--cache-entries",
        "64",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    // Two identical requests from two *separate* `datareuse query`
    // invocations: the cache is shared server-side, not per-connection.
    let request = r#"{"op":"explore","kernel":"me-small","array":"Old"}"#;
    let mut responses = Vec::new();
    for _ in 0..2 {
        let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
            .args(["query", "--addr", &server.addr, request])
            .output()
            .expect("query runs");
        assert!(out.status.success(), "query exits 0");
        let stdout = String::from_utf8(out.stdout).unwrap();
        responses.push(Json::parse(stdout.trim()).expect("response parses"));
    }
    assert_eq!(responses[0].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(
        responses[1].get("cached").and_then(Json::as_bool),
        Some(true),
        "second identical request must be served from cache"
    );
    assert_eq!(
        responses[0].get("result").map(Json::to_string),
        responses[1].get("result").map(Json::to_string),
        "cache hit returns the same bytes"
    );
    // The live stats op exposes the same counters the snapshot will.
    let stats = exchange(&server.addr, &[r#"{"op":"stats"}"#]);
    let counters = stats[0]
        .get("result")
        .and_then(|r| r.get("counters"))
        .expect("counters in stats");
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert!(counter("serve_requests") >= 3, "{counters}");
    assert!(counter("serve_cache_hits") >= 1, "{counters}");
    assert!(counter("serve_cache_misses") >= 1, "{counters}");
    server.shutdown();
    // After a graceful exit the `--metrics` snapshot records the traffic.
    let text = std::fs::read_to_string(&metrics).expect("metrics written on shutdown");
    let _ = std::fs::remove_file(&metrics);
    let doc = Json::parse(&text).unwrap();
    let counters = doc.get("counters").expect("counters section");
    assert!(
        counters.get("serve_cache_hits").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "snapshot records the cache hit: {counters}"
    );
}

#[test]
fn an_expired_deadline_returns_a_structured_timeout() {
    let server = ServerProc::spawn(&["--threads", "1"]);
    let responses = exchange(
        &server.addr,
        &[r#"{"op":"report","kernel":"susan","deadline_ms":0,"id":"slow"}"#],
    );
    let doc = &responses[0];
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("timeout")
    );
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("slow"));
    server.shutdown();
}

#[test]
fn query_propagates_server_errors_as_a_nonzero_exit() {
    let server = ServerProc::spawn(&[]);
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["query", "--addr", &server.addr, r#"{"op":"frobnicate"}"#])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(1), "error response exits 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("bad_request"), "stdout: {stdout}");
    server.shutdown();
}
