//! Black-box tests of `datareuse serve` / `datareuse query`.
//!
//! Every test spawns the real binary with `--addr 127.0.0.1:0`, reads
//! the `listening on` discovery line for the ephemeral port, talks to
//! the daemon over real sockets, and shuts it down gracefully.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use datareuse_core::Json;

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn(extra: &[&str]) -> ServerProc {
        Self::spawn_inner(extra, Stdio::null()).0
    }

    /// Spawns with stderr piped so a test can assert on the snapshot
    /// warnings. Read the handle only after the server exits — serve
    /// writes a few short lines, far below the pipe buffer, so the
    /// daemon never blocks on it.
    fn spawn_capturing_stderr(extra: &[&str]) -> (ServerProc, std::process::ChildStderr) {
        let (server, stderr) = Self::spawn_inner(extra, Stdio::piped());
        (server, stderr.expect("stderr piped"))
    }

    fn spawn_inner(
        extra: &[&str],
        stderr: Stdio,
    ) -> (ServerProc, Option<std::process::ChildStderr>) {
        let mut child = Command::new(env!("CARGO_BIN_EXE_datareuse"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(stderr)
            .spawn()
            .expect("server spawns");
        let captured = child.stderr.take();
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("discovery line");
        let addr = line
            .trim()
            .strip_prefix("datareuse-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected discovery line: {line}"))
            .to_string();
        (ServerProc { child, addr }, captured)
    }

    /// Kills the daemon without draining — for tests that deliberately
    /// wedge the worker pool with slow jobs.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Sends `shutdown` and asserts the daemon drains and exits 0
    /// within a timeout.
    fn shutdown(mut self) {
        let responses = exchange(&self.addr, &[r#"{"op":"shutdown"}"#]);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.child.try_wait().expect("wait works") {
                Some(status) => {
                    assert_eq!(status.code(), Some(0), "graceful shutdown exits 0");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not exit within the drain timeout");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// Opens one connection, sends each line, returns the parsed responses.
fn exchange(addr: &str, lines: &[&str]) -> Vec<Json> {
    let stream = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut out = Vec::new();
    for line in lines {
        writeln!(writer, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        out.push(Json::parse(&response).expect("response parses"));
    }
    out
}

fn one_shot_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "one-shot run succeeds");
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn concurrent_clients_get_results_byte_identical_to_the_one_shot_cli() {
    let expected = one_shot_stdout(&["explore", "fir", "--json"]);
    let expected = expected.trim();
    let server = ServerProc::spawn(&["--threads", "2"]);
    let addr = server.addr.clone();
    let handles: Vec<_> = (0..4)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let request = format!(r#"{{"op":"explore","kernel":"fir","id":{k}}}"#);
                let responses = exchange(&addr, &[&request]);
                let doc = &responses[0];
                assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
                assert_eq!(doc.get("id").and_then(Json::as_u64), Some(k));
                doc.get("result").expect("result present").to_string()
            })
        })
        .collect();
    for handle in handles {
        let result = handle.join().expect("client thread");
        assert_eq!(result, expected, "server result differs from CLI output");
    }
    server.shutdown();
}

#[test]
fn expression_kernels_round_trip_byte_identical_to_the_one_shot_cli() {
    // An inline einsum expression must flow parse → lower →
    // symbolic-first explore identically whether it arrives as a CLI
    // operand or over the wire as a serve op.
    let expr = "C[i,j] += A[i,k] * B[k,j]";
    let expected = one_shot_stdout(&["explore", expr, "--json"]);
    let expected = expected.trim();
    let server = ServerProc::spawn(&[]);
    let request = format!(r#"{{"op":"explore","kernel":"{expr}","id":7}}"#);
    let responses = exchange(&server.addr, &[&request]);
    let doc = &responses[0];
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc}");
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(7));
    let result = doc.get("result").expect("result present").to_string();
    assert_eq!(result, expected, "served expression result differs from CLI output");
    server.shutdown();
}

#[test]
fn repeated_queries_hit_the_cache_and_the_counters_prove_it() {
    let metrics = std::env::temp_dir().join(format!(
        "datareuse_serve_metrics_{}.json",
        std::process::id()
    ));
    let server = ServerProc::spawn(&[
        "--cache-entries",
        "64",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    // Two identical requests from two *separate* `datareuse query`
    // invocations: the cache is shared server-side, not per-connection.
    let request = r#"{"op":"explore","kernel":"me-small","array":"Old"}"#;
    let mut responses = Vec::new();
    for _ in 0..2 {
        let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
            .args(["query", "--addr", &server.addr, request])
            .output()
            .expect("query runs");
        assert!(out.status.success(), "query exits 0");
        let stdout = String::from_utf8(out.stdout).unwrap();
        responses.push(Json::parse(stdout.trim()).expect("response parses"));
    }
    assert_eq!(responses[0].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(
        responses[1].get("cached").and_then(Json::as_bool),
        Some(true),
        "second identical request must be served from cache"
    );
    assert_eq!(
        responses[0].get("result").map(Json::to_string),
        responses[1].get("result").map(Json::to_string),
        "cache hit returns the same bytes"
    );
    // The live stats op exposes the same counters the snapshot will.
    let stats = exchange(&server.addr, &[r#"{"op":"stats"}"#]);
    let counters = stats[0]
        .get("result")
        .and_then(|r| r.get("counters"))
        .expect("counters in stats");
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert!(counter("serve_requests") >= 3, "{counters}");
    assert!(counter("serve_cache_hits") >= 1, "{counters}");
    assert!(counter("serve_cache_misses") >= 1, "{counters}");
    server.shutdown();
    // After a graceful exit the `--metrics` snapshot records the traffic.
    let text = std::fs::read_to_string(&metrics).expect("metrics written on shutdown");
    let _ = std::fs::remove_file(&metrics);
    let doc = Json::parse(&text).unwrap();
    let counters = doc.get("counters").expect("counters section");
    assert!(
        counters.get("serve_cache_hits").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "snapshot records the cache hit: {counters}"
    );
}

#[test]
fn an_expired_deadline_returns_a_structured_timeout() {
    let server = ServerProc::spawn(&["--threads", "1"]);
    let responses = exchange(
        &server.addr,
        &[r#"{"op":"report","kernel":"susan","deadline_ms":0,"id":"slow"}"#],
    );
    let doc = &responses[0];
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("timeout")
    );
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("slow"));
    server.shutdown();
}

#[test]
fn query_propagates_server_errors_as_a_nonzero_exit() {
    let server = ServerProc::spawn(&[]);
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["query", "--addr", &server.addr, r#"{"op":"frobnicate"}"#])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(1), "error response exits 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("bad_request"), "stdout: {stdout}");
    server.shutdown();
}

#[test]
fn query_maps_timeouts_to_exit_3_and_prints_the_flight_tail() {
    let server = ServerProc::spawn(&["--threads", "1"]);
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args([
            "query",
            "--addr",
            &server.addr,
            r#"{"op":"report","kernel":"susan","deadline_ms":0}"#,
        ])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(3), "timeout maps to exit 3");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""code":"timeout""#), "stdout: {stdout}");
    assert!(
        stdout.contains(r#""flight":["#),
        "timeout response attaches the flight tail: {stdout}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("flight-recorder tail"),
        "stderr surfaces the tail: {stderr}"
    );
    assert!(
        stderr.contains("request_start"),
        "tail events print as NDJSON: {stderr}"
    );
    server.shutdown();
}

#[test]
fn query_maps_overload_to_exit_4() {
    // One worker, one queue slot. Two slow requests wedge both; the
    // third is refused with `overloaded`. Each request carries a
    // distinct `salt` field — the parser ignores it but the canonical
    // cache key hashes it, so the requests stay separate flights
    // instead of coalescing onto one computation.
    let server = ServerProc::spawn(&["--threads", "1", "--queue-depth", "1"]);
    let mut wedges = Vec::new();
    for salt in 0..2 {
        let slow =
            format!(r#"{{"op":"report","kernel":"susan","deadline_ms":60000,"salt":{salt}}}"#);
        let mut stream = TcpStream::connect(&server.addr).expect("connects");
        writeln!(stream, "{slow}").unwrap();
        stream.flush().unwrap();
        wedges.push(stream); // keep open; never read the response
        // Give the worker time to dequeue the first job so the second
        // lands in the queue slot rather than being refused itself.
        std::thread::sleep(Duration::from_millis(300));
    }
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args([
            "query",
            "--addr",
            &server.addr,
            r#"{"op":"report","kernel":"susan","deadline_ms":60000,"salt":2}"#,
        ])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(4), "overload maps to exit 4");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""code":"overloaded""#), "stdout: {stdout}");
    assert!(
        stdout.contains(r#""flight":["#),
        "overload response attaches the flight tail: {stdout}"
    );
    // The pool is wedged on a minutes-long report; no graceful drain.
    drop(wedges);
    server.kill();
}

#[test]
fn trace_out_writes_a_chrome_trace_with_nested_spans() {
    let trace = std::env::temp_dir().join(format!(
        "datareuse_serve_trace_{}.json",
        std::process::id()
    ));
    let server = ServerProc::spawn(&["--trace-out", trace.to_str().unwrap()]);
    let responses = exchange(
        &server.addr,
        &[r#"{"op":"explore","kernel":"fir","id":1}"#],
    );
    assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
    let text = std::fs::read_to_string(&trace).expect("trace written on shutdown");
    let _ = std::fs::remove_file(&trace);
    let doc = Json::parse(&text).expect("Chrome trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Every event is a complete Perfetto-loadable duration event.
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"), "{e}");
        assert!(e.get("ts").and_then(Json::as_f64).is_some(), "{e}");
        assert!(e.get("dur").and_then(Json::as_f64).is_some(), "{e}");
        assert!(
            e.get("args").and_then(|a| a.get("trace_id")).is_some(),
            "{e}"
        );
    }
    // The explore request produced a nested pair: its `execute` span
    // points at the `request` span of the same trace.
    let find = |name: &str, detail: &str| {
        events.iter().find(|e| {
            e.get("name").and_then(Json::as_str) == Some(name)
                && e.get("args").and_then(|a| a.get("detail")).and_then(Json::as_str)
                    == Some(detail)
        })
    };
    let request = find("request", "explore").expect("request span traced");
    let execute = find("execute", "explore").expect("execute span traced");
    let arg = |e: &Json, key: &str| e.get("args").and_then(|a| a.get(key)).map(Json::to_string);
    assert_eq!(
        arg(request, "trace_id"),
        arg(execute, "trace_id"),
        "same trace"
    );
    assert_eq!(
        arg(execute, "parent_span"),
        arg(request, "span_id"),
        "execute nests under request"
    );
}

#[test]
fn stats_derives_ratios_prom_scrapes_and_the_flight_recorder_replays() {
    let server = ServerProc::spawn(&["--cache-entries", "64"]);
    let request = r#"{"op":"explore","kernel":"me-small","array":"Old"}"#;
    let responses = exchange(&server.addr, &[request, request]);
    assert_eq!(responses[1].get("cached").and_then(Json::as_bool), Some(true));

    let stats = exchange(&server.addr, &[r#"{"op":"stats","flight":true}"#]);
    let result = stats[0].get("result").expect("stats result");
    let derived = result.get("derived").expect("derived section");
    assert!(
        derived.get("requests_served").and_then(Json::as_u64).unwrap_or(0) >= 2,
        "{derived}"
    );
    let ratio = derived
        .get("cache_hit_ratio")
        .and_then(Json::as_f64)
        .expect("hit ratio");
    assert!(ratio > 0.0 && ratio <= 1.0, "one hit of two probes: {ratio}");
    assert!(derived.get("queue_depth").and_then(Json::as_u64).is_some());
    assert!(derived.get("queue_depth_max").and_then(Json::as_u64).is_some());
    // v2 histograms rode along, split cold vs cache-hit.
    let hists = result.get("hists").expect("hists section");
    let count = |h: &str| {
        hists
            .get(h)
            .and_then(|x| x.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    assert!(count("serve_latency_cold_ns") >= 1, "{hists}");
    assert!(count("serve_latency_cache_hit_ns") >= 1, "{hists}");
    // The flight recorder replays the traffic: starts, ends, cache events.
    let flight = result.get("flight").and_then(Json::as_array).expect("flight tail");
    let kinds: Vec<&str> = flight
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"request_start"), "{kinds:?}");
    assert!(kinds.contains(&"request_end"), "{kinds:?}");
    assert!(kinds.contains(&"cache_hit"), "{kinds:?}");
    assert!(kinds.contains(&"cache_miss"), "{kinds:?}");

    // A prom scrape over the same socket protocol: text format with the
    // serve counters and at least one histogram bucket series.
    let prom = exchange(&server.addr, &[r#"{"op":"prom"}"#]);
    let text = prom[0]
        .get("result")
        .and_then(Json::as_str)
        .expect("prom result is the text block");
    assert!(text.contains("datareuse_serve_requests "), "{text}");
    assert!(text.contains("datareuse_serve_cache_hits "), "{text}");
    assert!(text.contains("_bucket{le="), "{text}");
    server.shutdown();
}

#[test]
fn health_maps_to_exit_codes_and_top_renders_the_series() {
    let series_path = std::env::temp_dir().join(format!(
        "datareuse_serve_{}_series.ndjson",
        std::process::id()
    ));
    // Fast scraper so a short-lived test server retains several points.
    let server = ServerProc::spawn(&[
        "--scrape-ms",
        "20",
        "--series-out",
        series_path.to_str().unwrap(),
    ]);
    // A healthy server: `query health` exits 0.
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["query", "--addr", &server.addr, r#"{"op":"health"}"#])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(0), "healthy server exits 0");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""status":"ok""#), "stdout: {stdout}");
    // Generate some traffic, give the scraper a couple of windows, then
    // render one dashboard frame.
    exchange(
        &server.addr,
        &[
            r#"{"op":"explore","kernel":"fir"}"#,
            r#"{"op":"explore","kernel":"fir"}"#,
        ],
    );
    std::thread::sleep(Duration::from_millis(80));
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["top", "--addr", &server.addr, "--once", "--ascii"])
        .output()
        .expect("top runs");
    assert_eq!(out.status.code(), Some(0), "top --once exits 0");
    let frame = String::from_utf8(out.stdout).unwrap();
    assert!(frame.contains("datareuse top"), "frame:\n{frame}");
    assert!(frame.contains("req/win"), "frame has sparklines:\n{frame}");
    assert!(!frame.contains('\x1b'), "--once/--ascii frame is ANSI-free");
    server.shutdown();
    // The drain dumped the retained series window as NDJSON.
    let dump = std::fs::read_to_string(&series_path).expect("series dump written");
    std::fs::remove_file(&series_path).ok();
    assert!(dump.lines().count() >= 2, "several points retained:\n{dump}");
    for line in dump.lines() {
        let point = Json::parse(line).expect("series line parses");
        assert!(point.get("counters").is_some());
        assert!(point.get("hists").is_some());
    }
}

#[test]
fn identical_concurrent_requests_coalesce_onto_one_computation() {
    // The cache is disabled, so the only way a follower can avoid
    // recomputing is the singleflight join. All K identical requests go
    // out in ONE write on one connection: the event loop dispatches the
    // whole block in a single read pass (microseconds), while the
    // leader's susan exploration runs for ~200ms on a worker — the
    // followers join the open flight long before it completes.
    const K: usize = 4;
    let server = ServerProc::spawn(&["--threads", "2", "--cache-entries", "0"]);
    let request = r#"{"op":"explore","kernel":"susan","deadline_ms":60000}"#;
    let stream = TcpStream::connect(&server.addr).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut block = String::new();
    for _ in 0..K {
        block.push_str(request);
        block.push('\n');
    }
    writer.write_all(block.as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut responses = Vec::new();
    for _ in 0..K {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        responses.push(Json::parse(&line).expect("response parses"));
    }
    let first = responses[0].get("result").expect("result").to_string();
    let mut coalesced = 0;
    for doc in &responses {
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc}");
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("result").expect("result").to_string(),
            first,
            "every coalesced response carries the leader's exact bytes"
        );
        if doc.get("coalesced").and_then(Json::as_bool) == Some(true) {
            coalesced += 1;
        }
    }
    assert_eq!(coalesced, K - 1, "exactly one leader, K-1 followers");
    let stats = exchange(&server.addr, &[r#"{"op":"stats"}"#]);
    let counters = stats[0]
        .get("result")
        .and_then(|r| r.get("counters"))
        .expect("counters in stats");
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(counter("serve_coalesced"), (K - 1) as u64, "{counters}");
    assert_eq!(counter("serve_cache_misses"), 1, "one computation: {counters}");
    // memstats breaks the same traffic out for allocation attribution:
    // one leader actually computed (and allocated); the K-1 followers
    // copied its bytes. Dividing allocator deltas by `computed` — not by
    // `requests` — is what keeps bytes-per-explore honest under
    // coalescing.
    let memstats = exchange(&server.addr, &[r#"{"op":"memstats"}"#]);
    let doc = &memstats[0];
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc}");
    let result = doc.get("result").expect("memstats result");
    assert_eq!(
        result.get("schema").and_then(Json::as_str),
        Some("datareuse-memstats-v1")
    );
    let serve = result.get("serve").expect("serve section");
    let serve_num = |name: &str| serve.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(serve_num("computed"), 1, "one leader computation: {serve}");
    assert_eq!(
        serve_num("coalesced_followers"),
        (K - 1) as u64,
        "followers attributed separately so they don't dilute bytes-per-compute: {serve}"
    );
    let allocator = result.get("allocator").expect("allocator section");
    assert!(
        allocator.get("bytes_allocated").and_then(Json::as_u64).unwrap_or(0) > 0,
        "the leader's exploration allocated: {allocator}"
    );
    server.shutdown();
}

#[test]
fn a_batch_frame_answers_with_bytes_identical_to_the_one_shot_cli() {
    let expected = one_shot_stdout(&["explore", "fir", "--json"]);
    let expected = expected.trim();
    let server = ServerProc::spawn(&["--cache-entries", "64"]);
    let batch = concat!(
        r#"{"op":"batch","id":9,"requests":["#,
        r#"{"op":"explore","kernel":"fir","id":"a"},"#,
        r#"{"op":"ping","id":"b"}]}"#
    );
    let responses = exchange(&server.addr, &[batch]);
    let doc = &responses[0];
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{doc}");
    assert_eq!(doc.get("id").and_then(Json::as_u64), Some(9));
    let subs = doc
        .get("result")
        .and_then(|r| r.get("responses"))
        .and_then(Json::as_array)
        .expect("responses array");
    assert_eq!(subs.len(), 2);
    assert_eq!(subs[0].get("id").and_then(Json::as_str), Some("a"));
    assert_eq!(
        subs[0].get("result").map(Json::to_string).unwrap(),
        expected,
        "batched explore matches the one-shot CLI byte for byte"
    );
    assert_eq!(subs[1].get("id").and_then(Json::as_str), Some("b"));
    assert_eq!(subs[1].get("ok").and_then(Json::as_bool), Some(true));
    // The batch populated the shared cache: a standalone frame for the
    // same computation is now a hit with the same bytes.
    let single = exchange(&server.addr, &[r#"{"op":"explore","kernel":"fir"}"#]);
    assert_eq!(single[0].get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        single[0].get("result").map(Json::to_string).unwrap(),
        expected
    );
    let stats = exchange(&server.addr, &[r#"{"op":"stats"}"#]);
    let counters = stats[0]
        .get("result")
        .and_then(|r| r.get("counters"))
        .expect("counters in stats");
    assert!(
        counters.get("serve_batch_requests").and_then(Json::as_u64).unwrap_or(0) >= 2,
        "batch sub-requests counted: {counters}"
    );
    server.shutdown();
}

#[test]
fn a_cache_snapshot_warm_start_serves_the_first_request_from_cache() {
    let snap = std::env::temp_dir().join(format!(
        "datareuse_serve_snap_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&snap);
    let expected = one_shot_stdout(&["explore", "fir", "--json"]);
    let expected = expected.trim();
    let request = r#"{"op":"explore","kernel":"fir"}"#;
    let args = [
        "--cache-entries",
        "64",
        "--cache-snapshot",
        snap.to_str().unwrap(),
    ];

    // First life: compute once, drain, persist.
    let server = ServerProc::spawn(&args);
    let cold = exchange(&server.addr, &[request]);
    assert_eq!(cold[0].get("cached").and_then(Json::as_bool), Some(false));
    server.shutdown();
    let text = std::fs::read_to_string(&snap).expect("snapshot written on drain");
    assert!(text.contains("datareuse-cache-snapshot-v1"), "{text}");

    // Second life: the very first request is already a hit, and the
    // restored bytes match both the first life and the one-shot CLI.
    let server = ServerProc::spawn(&args);
    let warm = exchange(&server.addr, &[request]);
    assert_eq!(
        warm[0].get("cached").and_then(Json::as_bool),
        Some(true),
        "warm start serves from the restored cache: {}",
        warm[0]
    );
    let warm_result = warm[0].get("result").map(Json::to_string).unwrap();
    assert_eq!(
        warm_result,
        cold[0].get("result").map(Json::to_string).unwrap(),
        "restored bytes match the original computation"
    );
    assert_eq!(warm_result, expected, "and the one-shot CLI");
    let stats = exchange(&server.addr, &[r#"{"op":"stats"}"#]);
    let counters = stats[0]
        .get("result")
        .and_then(|r| r.get("counters"))
        .expect("counters in stats");
    assert!(
        counters.get("serve_snapshot_loaded").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "load recorded: {counters}"
    );
    server.shutdown();
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn corrupt_and_stale_snapshots_are_rejected_with_a_cold_start() {
    let old_version = concat!(
        r#"{"schema":"datareuse-cache-snapshot-v0","entries":[],"#,
        r#""checksum":"0000000000000000"}"#
    );
    for (label, contents) in [("garbage", "not json at all"), ("stale schema", old_version)] {
        let snap = std::env::temp_dir().join(format!(
            "datareuse_serve_badsnap_{}_{}.json",
            std::process::id(),
            label.replace(' ', "_")
        ));
        std::fs::write(&snap, contents).unwrap();
        let (server, mut stderr) = ServerProc::spawn_capturing_stderr(&[
            "--cache-entries",
            "64",
            "--cache-snapshot",
            snap.to_str().unwrap(),
        ]);
        // The server came up serving (cold) despite the bad snapshot.
        let responses = exchange(&server.addr, &[r#"{"op":"explore","kernel":"fir"}"#]);
        assert_eq!(
            responses[0].get("cached").and_then(Json::as_bool),
            Some(false),
            "{label}: nothing restored"
        );
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
        server.shutdown();
        let mut text = String::new();
        std::io::Read::read_to_string(&mut stderr, &mut text).unwrap();
        assert!(
            text.contains("cache snapshot rejected"),
            "{label}: stderr surfaces the rejection: {text}"
        );
        let _ = std::fs::remove_file(&snap);
    }
}

#[test]
fn an_unmeetable_slo_maps_health_to_exit_6() {
    // A zero p99 SLO fails as soon as any request has been served.
    let server = ServerProc::spawn(&["--slo-p99-ms", "0"]);
    exchange(&server.addr, &[r#"{"op":"ping"}"#]);
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["query", "--addr", &server.addr, r#"{"op":"health"}"#])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(6), "failing health exits 6");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""status":"failing""#), "stdout: {stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("health is failing"), "stderr: {stderr}");
    server.shutdown();
}
