//! Black-box tests of `datareuse serve` / `datareuse query`.
//!
//! Every test spawns the real binary with `--addr 127.0.0.1:0`, reads
//! the `listening on` discovery line for the ephemeral port, talks to
//! the daemon over real sockets, and shuts it down gracefully.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use datareuse_core::Json;

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn(extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_datareuse"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("discovery line");
        let addr = line
            .trim()
            .strip_prefix("datareuse-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected discovery line: {line}"))
            .to_string();
        ServerProc { child, addr }
    }

    /// Kills the daemon without draining — for tests that deliberately
    /// wedge the worker pool with slow jobs.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Sends `shutdown` and asserts the daemon drains and exits 0
    /// within a timeout.
    fn shutdown(mut self) {
        let responses = exchange(&self.addr, &[r#"{"op":"shutdown"}"#]);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.child.try_wait().expect("wait works") {
                Some(status) => {
                    assert_eq!(status.code(), Some(0), "graceful shutdown exits 0");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not exit within the drain timeout");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// Opens one connection, sends each line, returns the parsed responses.
fn exchange(addr: &str, lines: &[&str]) -> Vec<Json> {
    let stream = TcpStream::connect(addr).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut out = Vec::new();
    for line in lines {
        writeln!(writer, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        out.push(Json::parse(&response).expect("response parses"));
    }
    out
}

fn one_shot_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "one-shot run succeeds");
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn concurrent_clients_get_results_byte_identical_to_the_one_shot_cli() {
    let expected = one_shot_stdout(&["explore", "fir", "--json"]);
    let expected = expected.trim();
    let server = ServerProc::spawn(&["--threads", "2"]);
    let addr = server.addr.clone();
    let handles: Vec<_> = (0..4)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let request = format!(r#"{{"op":"explore","kernel":"fir","id":{k}}}"#);
                let responses = exchange(&addr, &[&request]);
                let doc = &responses[0];
                assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
                assert_eq!(doc.get("id").and_then(Json::as_u64), Some(k));
                doc.get("result").expect("result present").to_string()
            })
        })
        .collect();
    for handle in handles {
        let result = handle.join().expect("client thread");
        assert_eq!(result, expected, "server result differs from CLI output");
    }
    server.shutdown();
}

#[test]
fn repeated_queries_hit_the_cache_and_the_counters_prove_it() {
    let metrics = std::env::temp_dir().join(format!(
        "datareuse_serve_metrics_{}.json",
        std::process::id()
    ));
    let server = ServerProc::spawn(&[
        "--cache-entries",
        "64",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    // Two identical requests from two *separate* `datareuse query`
    // invocations: the cache is shared server-side, not per-connection.
    let request = r#"{"op":"explore","kernel":"me-small","array":"Old"}"#;
    let mut responses = Vec::new();
    for _ in 0..2 {
        let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
            .args(["query", "--addr", &server.addr, request])
            .output()
            .expect("query runs");
        assert!(out.status.success(), "query exits 0");
        let stdout = String::from_utf8(out.stdout).unwrap();
        responses.push(Json::parse(stdout.trim()).expect("response parses"));
    }
    assert_eq!(responses[0].get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(
        responses[1].get("cached").and_then(Json::as_bool),
        Some(true),
        "second identical request must be served from cache"
    );
    assert_eq!(
        responses[0].get("result").map(Json::to_string),
        responses[1].get("result").map(Json::to_string),
        "cache hit returns the same bytes"
    );
    // The live stats op exposes the same counters the snapshot will.
    let stats = exchange(&server.addr, &[r#"{"op":"stats"}"#]);
    let counters = stats[0]
        .get("result")
        .and_then(|r| r.get("counters"))
        .expect("counters in stats");
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert!(counter("serve_requests") >= 3, "{counters}");
    assert!(counter("serve_cache_hits") >= 1, "{counters}");
    assert!(counter("serve_cache_misses") >= 1, "{counters}");
    server.shutdown();
    // After a graceful exit the `--metrics` snapshot records the traffic.
    let text = std::fs::read_to_string(&metrics).expect("metrics written on shutdown");
    let _ = std::fs::remove_file(&metrics);
    let doc = Json::parse(&text).unwrap();
    let counters = doc.get("counters").expect("counters section");
    assert!(
        counters.get("serve_cache_hits").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "snapshot records the cache hit: {counters}"
    );
}

#[test]
fn an_expired_deadline_returns_a_structured_timeout() {
    let server = ServerProc::spawn(&["--threads", "1"]);
    let responses = exchange(
        &server.addr,
        &[r#"{"op":"report","kernel":"susan","deadline_ms":0,"id":"slow"}"#],
    );
    let doc = &responses[0];
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
        Some("timeout")
    );
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("slow"));
    server.shutdown();
}

#[test]
fn query_propagates_server_errors_as_a_nonzero_exit() {
    let server = ServerProc::spawn(&[]);
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["query", "--addr", &server.addr, r#"{"op":"frobnicate"}"#])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(1), "error response exits 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("bad_request"), "stdout: {stdout}");
    server.shutdown();
}

#[test]
fn query_maps_timeouts_to_exit_3_and_prints_the_flight_tail() {
    let server = ServerProc::spawn(&["--threads", "1"]);
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args([
            "query",
            "--addr",
            &server.addr,
            r#"{"op":"report","kernel":"susan","deadline_ms":0}"#,
        ])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(3), "timeout maps to exit 3");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""code":"timeout""#), "stdout: {stdout}");
    assert!(
        stdout.contains(r#""flight":["#),
        "timeout response attaches the flight tail: {stdout}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("flight-recorder tail"),
        "stderr surfaces the tail: {stderr}"
    );
    assert!(
        stderr.contains("request_start"),
        "tail events print as NDJSON: {stderr}"
    );
    server.shutdown();
}

#[test]
fn query_maps_overload_to_exit_4() {
    // One worker, one queue slot. Two slow requests wedge both; the
    // third is refused with `overloaded`.
    let server = ServerProc::spawn(&["--threads", "1", "--queue-depth", "1"]);
    let slow = r#"{"op":"report","kernel":"susan","deadline_ms":60000}"#;
    let mut wedges = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(&server.addr).expect("connects");
        writeln!(stream, "{slow}").unwrap();
        stream.flush().unwrap();
        wedges.push(stream); // keep open; never read the response
        // Give the worker time to dequeue the first job so the second
        // lands in the queue slot rather than being refused itself.
        std::thread::sleep(Duration::from_millis(300));
    }
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["query", "--addr", &server.addr, slow])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(4), "overload maps to exit 4");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""code":"overloaded""#), "stdout: {stdout}");
    assert!(
        stdout.contains(r#""flight":["#),
        "overload response attaches the flight tail: {stdout}"
    );
    // The pool is wedged on a minutes-long report; no graceful drain.
    drop(wedges);
    server.kill();
}

#[test]
fn trace_out_writes_a_chrome_trace_with_nested_spans() {
    let trace = std::env::temp_dir().join(format!(
        "datareuse_serve_trace_{}.json",
        std::process::id()
    ));
    let server = ServerProc::spawn(&["--trace-out", trace.to_str().unwrap()]);
    let responses = exchange(
        &server.addr,
        &[r#"{"op":"explore","kernel":"fir","id":1}"#],
    );
    assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
    let text = std::fs::read_to_string(&trace).expect("trace written on shutdown");
    let _ = std::fs::remove_file(&trace);
    let doc = Json::parse(&text).expect("Chrome trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Every event is a complete Perfetto-loadable duration event.
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"), "{e}");
        assert!(e.get("ts").and_then(Json::as_f64).is_some(), "{e}");
        assert!(e.get("dur").and_then(Json::as_f64).is_some(), "{e}");
        assert!(
            e.get("args").and_then(|a| a.get("trace_id")).is_some(),
            "{e}"
        );
    }
    // The explore request produced a nested pair: its `execute` span
    // points at the `request` span of the same trace.
    let find = |name: &str, detail: &str| {
        events.iter().find(|e| {
            e.get("name").and_then(Json::as_str) == Some(name)
                && e.get("args").and_then(|a| a.get("detail")).and_then(Json::as_str)
                    == Some(detail)
        })
    };
    let request = find("request", "explore").expect("request span traced");
    let execute = find("execute", "explore").expect("execute span traced");
    let arg = |e: &Json, key: &str| e.get("args").and_then(|a| a.get(key)).map(Json::to_string);
    assert_eq!(
        arg(request, "trace_id"),
        arg(execute, "trace_id"),
        "same trace"
    );
    assert_eq!(
        arg(execute, "parent_span"),
        arg(request, "span_id"),
        "execute nests under request"
    );
}

#[test]
fn stats_derives_ratios_prom_scrapes_and_the_flight_recorder_replays() {
    let server = ServerProc::spawn(&["--cache-entries", "64"]);
    let request = r#"{"op":"explore","kernel":"me-small","array":"Old"}"#;
    let responses = exchange(&server.addr, &[request, request]);
    assert_eq!(responses[1].get("cached").and_then(Json::as_bool), Some(true));

    let stats = exchange(&server.addr, &[r#"{"op":"stats","flight":true}"#]);
    let result = stats[0].get("result").expect("stats result");
    let derived = result.get("derived").expect("derived section");
    assert!(
        derived.get("requests_served").and_then(Json::as_u64).unwrap_or(0) >= 2,
        "{derived}"
    );
    let ratio = derived
        .get("cache_hit_ratio")
        .and_then(Json::as_f64)
        .expect("hit ratio");
    assert!(ratio > 0.0 && ratio <= 1.0, "one hit of two probes: {ratio}");
    assert!(derived.get("queue_depth").and_then(Json::as_u64).is_some());
    assert!(derived.get("queue_depth_max").and_then(Json::as_u64).is_some());
    // v2 histograms rode along, split cold vs cache-hit.
    let hists = result.get("hists").expect("hists section");
    let count = |h: &str| {
        hists
            .get(h)
            .and_then(|x| x.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    assert!(count("serve_latency_cold_ns") >= 1, "{hists}");
    assert!(count("serve_latency_cache_hit_ns") >= 1, "{hists}");
    // The flight recorder replays the traffic: starts, ends, cache events.
    let flight = result.get("flight").and_then(Json::as_array).expect("flight tail");
    let kinds: Vec<&str> = flight
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"request_start"), "{kinds:?}");
    assert!(kinds.contains(&"request_end"), "{kinds:?}");
    assert!(kinds.contains(&"cache_hit"), "{kinds:?}");
    assert!(kinds.contains(&"cache_miss"), "{kinds:?}");

    // A prom scrape over the same socket protocol: text format with the
    // serve counters and at least one histogram bucket series.
    let prom = exchange(&server.addr, &[r#"{"op":"prom"}"#]);
    let text = prom[0]
        .get("result")
        .and_then(Json::as_str)
        .expect("prom result is the text block");
    assert!(text.contains("datareuse_serve_requests "), "{text}");
    assert!(text.contains("datareuse_serve_cache_hits "), "{text}");
    assert!(text.contains("_bucket{le="), "{text}");
    server.shutdown();
}

#[test]
fn health_maps_to_exit_codes_and_top_renders_the_series() {
    let series_path = std::env::temp_dir().join(format!(
        "datareuse_serve_{}_series.ndjson",
        std::process::id()
    ));
    // Fast scraper so a short-lived test server retains several points.
    let server = ServerProc::spawn(&[
        "--scrape-ms",
        "20",
        "--series-out",
        series_path.to_str().unwrap(),
    ]);
    // A healthy server: `query health` exits 0.
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["query", "--addr", &server.addr, r#"{"op":"health"}"#])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(0), "healthy server exits 0");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""status":"ok""#), "stdout: {stdout}");
    // Generate some traffic, give the scraper a couple of windows, then
    // render one dashboard frame.
    exchange(
        &server.addr,
        &[
            r#"{"op":"explore","kernel":"fir"}"#,
            r#"{"op":"explore","kernel":"fir"}"#,
        ],
    );
    std::thread::sleep(Duration::from_millis(80));
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["top", "--addr", &server.addr, "--once", "--ascii"])
        .output()
        .expect("top runs");
    assert_eq!(out.status.code(), Some(0), "top --once exits 0");
    let frame = String::from_utf8(out.stdout).unwrap();
    assert!(frame.contains("datareuse top"), "frame:\n{frame}");
    assert!(frame.contains("req/win"), "frame has sparklines:\n{frame}");
    assert!(!frame.contains('\x1b'), "--once/--ascii frame is ANSI-free");
    server.shutdown();
    // The drain dumped the retained series window as NDJSON.
    let dump = std::fs::read_to_string(&series_path).expect("series dump written");
    std::fs::remove_file(&series_path).ok();
    assert!(dump.lines().count() >= 2, "several points retained:\n{dump}");
    for line in dump.lines() {
        let point = Json::parse(line).expect("series line parses");
        assert!(point.get("counters").is_some());
        assert!(point.get("hists").is_some());
    }
}

#[test]
fn an_unmeetable_slo_maps_health_to_exit_6() {
    // A zero p99 SLO fails as soon as any request has been served.
    let server = ServerProc::spawn(&["--slo-p99-ms", "0"]);
    exchange(&server.addr, &[r#"{"op":"ping"}"#]);
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(["query", "--addr", &server.addr, r#"{"op":"health"}"#])
        .output()
        .expect("query runs");
    assert_eq!(out.status.code(), Some(6), "failing health exits 6");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains(r#""status":"failing""#), "stdout: {stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("health is failing"), "stderr: {stderr}");
    server.shutdown();
}
