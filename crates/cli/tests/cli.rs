//! Black-box tests of the `datareuse` binary.

use std::process::Command;

use datareuse_core::Json;

fn datareuse(args: &[&str]) -> (bool, String, String) {
    datareuse_env(args, &[])
}

fn datareuse_env(args: &[&str], env: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_datareuse"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("datareuse_cli_{}_{name}", std::process::id()))
}

#[test]
fn kernels_lists_builtins() {
    let (ok, stdout, _) = datareuse(&["kernels"]);
    assert!(ok);
    for name in ["me", "susan", "conv2d", "matmul", "sobel", "downsample"] {
        assert!(stdout.contains(name), "missing `{name}` in:\n{stdout}");
    }
}

#[test]
fn kernels_lists_the_generated_corpus_with_domain_summaries() {
    let (ok, stdout, _) = datareuse(&["kernels"]);
    assert!(ok);
    for flagship in ["gen-matmul-32x32x32", "gen-conv2d-32x32x3", "gen-stencil2d-32x32"] {
        assert!(stdout.contains(flagship), "missing `{flagship}` in:\n{stdout}");
    }
    // Every listing row carries its iteration-domain / footprint line.
    assert!(stdout.contains("iterations"), "{stdout}");
    assert!(stdout.contains("elements"), "{stdout}");
}

#[test]
fn kernels_json_is_machine_readable_and_covers_both_registries() {
    let (ok, stdout, stderr) = datareuse(&["kernels", "--json"]);
    assert!(ok, "{stderr}");
    let doc = Json::parse(stdout.trim()).expect("kernels JSON parses");
    let builtins = doc.get("builtins").and_then(Json::as_array).expect("builtins");
    assert!(builtins.len() >= 10);
    let corpus = doc.get("corpus").and_then(Json::as_array).expect("corpus");
    assert!(corpus.len() >= 36, "corpus has {} entries", corpus.len());
    for entry in corpus {
        let name = entry.get("name").and_then(Json::as_str).expect("name");
        assert!(name.starts_with("gen-"), "{name}");
        assert!(entry.get("expr").and_then(Json::as_str).is_some(), "{name}: no expr");
        assert!(
            entry.get("iterations").and_then(Json::as_u64).unwrap_or(0) > 0,
            "{name}: empty domain"
        );
        let arrays = entry.get("arrays").and_then(Json::as_array).expect("arrays");
        assert!(!arrays.is_empty(), "{name}: no array footprint");
    }
}

#[test]
fn inline_expressions_explore_like_builtin_kernels() {
    // Positional expression operand.
    let (ok, stdout, stderr) =
        datareuse(&["explore", "C[i,j] += A[i,k] * B[k,j]", "--array", "A"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("signal `A`"), "{stdout}");
    // Same program through --expr; matmul at the default extent is the
    // builtin matmul, so the reports must agree.
    let (ok2, stdout2, _) =
        datareuse(&["explore", "--expr", "C[i,j] += A[i,k] * B[k,j]", "--array", "A", "--json"]);
    assert!(ok2);
    let (ok3, stdout3, _) = datareuse(&["explore", "matmul", "--array", "A", "--json"]);
    assert!(ok3);
    assert_eq!(stdout2, stdout3, "expression-derived matmul diverges from builtin");
}

#[test]
fn expression_parse_errors_print_a_caret_snippet_and_exit_2() {
    let (code, stderr) = exit_code_of(&["explore", "C[i,j] += A[i,k * B[k,j]"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("1:17"), "no line:column in: {stderr}");
    assert!(
        stderr.lines().any(|l| l.trim_end().ends_with('^')),
        "no caret line in: {stderr}"
    );
    assert!(stderr.contains("C[i,j] += A[i,k * B[k,j]"), "{stderr}");
    assert!(stderr.contains("usage: datareuse"), "{stderr}");
}

#[test]
fn emit_rust_prints_a_runnable_program() {
    let (ok, stdout, _) = datareuse(&["emit", "gen-matmul-32x32x32", "--rust"]);
    assert!(ok);
    assert!(stdout.contains("fn main() {"), "{stdout}");
    assert!(stdout.contains("let mut A: Vec<u16>"), "{stdout}");
    assert!(stdout.contains("println!(\"OK {checksum}\");"), "{stdout}");
}

#[test]
fn codegen_rust_band_emits_a_selfcheck_program() {
    let (ok, stdout, stderr) = datareuse(&[
        "codegen",
        "gen-conv2d-32x32x3",
        "--array",
        "image",
        "--band",
        "1",
        "--rust",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("fn run_original"), "{stdout}");
    assert!(stdout.contains("fn run_transformed"), "{stdout}");
    assert!(stdout.contains("MISMATCH"), "{stdout}");
    // --rust without --band is a usage error.
    let (code, stderr) = exit_code_of(&["codegen", "matmul", "--array", "A", "--rust"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("--band"), "{stderr}");
}

#[test]
fn bench_corpus_writes_a_schema_conforming_artifact() {
    let path = temp_path("bench_corpus.json");
    let (ok, _, stderr) = datareuse(&[
        "bench-corpus",
        "--samples",
        "1",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).expect("artifact parses");
    let _ = std::fs::remove_file(&path);
    assert_eq!(doc.get("group").and_then(Json::as_str), Some("corpus"));
    let benches = doc.get("benches").and_then(Json::as_array).expect("benches");
    assert!(benches.len() >= 36);
    let symbolic = doc.get("symbolic").expect("symbolic summary");
    assert!(symbolic.get("hit_rate").and_then(Json::as_f64).expect("hit_rate") >= 0.99);
}

#[test]
fn emit_prints_c_for_builtin() {
    let (ok, stdout, _) = datareuse(&["emit", "me-small"]);
    assert!(ok);
    assert!(stdout.contains("uint8_t Old[39][39];"));
    assert!(stdout.contains("for (int i1 = 0; i1 <= 7; i1++) {"));
}

#[test]
fn explore_defaults_to_a_read_array_and_accepts_explicit_one() {
    // Old and New tie on read count; the default picks one of them.
    let (ok, stdout, _) = datareuse(&["explore", "me-small"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("signal `New`") || stdout.contains("signal `Old`"));
    assert!(stdout.contains("Pareto front"));
    let (ok, stdout, _) = datareuse(&["explore", "me-small", "--array", "Old"]);
    assert!(ok);
    assert!(stdout.contains("signal `Old`"));
}

#[test]
fn explore_accepts_dsl_files() {
    let dir = std::env::temp_dir().join(format!("datareuse_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("window.dr");
    std::fs::write(
        &path,
        "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
    )
    .unwrap();
    let (ok, stdout, stderr) = datareuse(&["explore", path.to_str().unwrap(), "--simulate"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("signal `A`: 128 reads"));
    assert!(stdout.contains("Belady-optimal reuse factors"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn curve_prints_gnuplot_rows() {
    let (ok, stdout, _) = datareuse(&["curve", "me-small", "--sizes", "8,64", "--policy", "opt"]);
    assert!(ok);
    assert!(stdout.starts_with("# size"));
    assert_eq!(stdout.lines().count(), 3);
}

#[test]
fn codegen_emits_template() {
    let (ok, stdout, _) = datareuse(&[
        "codegen",
        "me-small",
        "--array",
        "Old",
        "--pair",
        "3,5",
        "--strategy",
        "bypass:2",
    ]);
    assert!(ok);
    assert!(stdout.contains("Old_sub"));
    assert!(stdout.contains("bypass"));
}

#[test]
fn orders_ranks_loop_permutations() {
    let (ok, stdout, _) = datareuse(&["orders", "matmul", "--array", "B", "--limit", "6"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("loop orderings for `B`"));
    assert!(stdout.lines().count() >= 7);
}

#[test]
fn report_covers_all_signals() {
    let (ok, stdout, _) = datareuse(&["report", "me-small"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("signal `New`"));
    assert!(stdout.contains("signal `Old`"));
}

#[test]
fn explore_json_emits_machine_readable_report() {
    let (ok, stdout, stderr) = datareuse(&["explore", "me-small", "--array", "Old", "--json"]);
    assert!(ok, "{stderr}");
    let line = stdout.trim();
    assert!(line.starts_with("{\"array\":\"Old\""), "got: {line}");
    assert!(line.ends_with('}'));
    assert!(line.contains("\"candidates\":[{\"source\":"));
    assert!(line.contains("\"pareto\":[{\"level_sizes\":"));
}

#[test]
fn report_json_emits_one_document_per_signal() {
    let (ok, stdout, stderr) = datareuse(&["report", "me-small", "--json"]);
    assert!(ok, "{stderr}");
    let line = stdout.trim();
    assert!(line.starts_with('[') && line.ends_with(']'), "got: {line}");
    assert!(line.contains("\"array\":\"New\""));
    assert!(line.contains("\"array\":\"Old\""));
}

#[test]
fn codegen_selfcheck_emits_main() {
    let (ok, stdout, _) = datareuse(&[
        "codegen",
        "fir",
        "--array",
        "x",
        "--pair",
        "0,1",
        "--selfcheck",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("int main(void)"));
    assert!(stdout.contains("run_transformed"));
}

#[test]
fn explore_workingset_flag_prints_profile() {
    let (ok, stdout, _) = datareuse(&["explore", "me-small", "--array", "Old", "--workingset"]);
    assert!(ok);
    assert!(stdout.contains("working-set profile"));
}

#[test]
fn explore_metrics_emits_valid_json_covering_the_pipeline() {
    let path = temp_path("metrics.json");
    let (ok, _, stderr) = datareuse(&[
        "explore",
        "susan-small",
        "--simulate",
        "--metrics",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("metrics written to"), "{stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    // The artifact must round-trip through the in-repo JSON reader.
    let doc = Json::parse(&text).expect("metrics JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("datareuse-metrics-v2")
    );
    let counters = doc.get("counters").expect("counters section");
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    // Exploration, chain costing, and a trace simulator all recorded work.
    assert!(counter("explore_candidates_generated") > 0);
    assert!(counter("chains_enumerated") > 0);
    assert!(counter("chains_evaluated") > 0);
    assert!(counter("pareto_points_kept") > 0);
    assert!(counter("belady_accesses") > 0, "Belady simulator uncovered");
    // v2 embeds histograms: the --simulate pass ran the trace simulator,
    // and its percentiles must be ordered.
    let sim = doc
        .get("hists")
        .and_then(|h| h.get("trace_sim_run_ns"))
        .expect("trace_sim_run_ns histogram");
    let q = |name: &str| sim.get(name).and_then(Json::as_u64).unwrap();
    assert!(q("count") > 0, "simulator runs recorded");
    assert!(q("p50") <= q("p90") && q("p90") <= q("p99"), "percentiles ordered");
    // Spans timed the exploration stages.
    let spans = doc.get("spans").and_then(Json::as_array).unwrap();
    let paths: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("path").and_then(Json::as_str))
        .collect();
    assert!(paths.contains(&"explore"), "span paths: {paths:?}");
    assert!(paths.contains(&"pareto"), "span paths: {paths:?}");
}

#[test]
fn metrics_counters_are_thread_count_invariant() {
    // Counters count work, not scheduling: the order-preserving sweep must
    // produce identical counts at 1 and 8 workers. Timings (`spans`),
    // `gauges`, and `load` legitimately differ and are excluded.
    let mut counter_sections = Vec::new();
    for threads in ["1", "8"] {
        let path = temp_path(&format!("det_{threads}.json"));
        let (ok, _, stderr) = datareuse_env(
            &[
                "explore",
                "me-small",
                "--array",
                "Old",
                "--simulate",
                "--metrics",
                path.to_str().unwrap(),
            ],
            &[("DATAREUSE_THREADS", threads)],
        );
        assert!(ok, "{stderr}");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let doc = Json::parse(&text).unwrap();
        counter_sections.push(doc.get("counters").unwrap().clone());
    }
    assert_eq!(
        counter_sections[0], counter_sections[1],
        "counters must not depend on DATAREUSE_THREADS"
    );
}

/// The dispatch boundary of the symbolic engine, observed end to end
/// through the metrics counters: a conforming double nest must be served
/// entirely by the symbolic path (`sim_fallbacks == 0`), and a
/// deliberately non-affine (diagonal) nest must take the enumeration
/// fallback. Spawned as separate processes so each run sees a fresh
/// counter registry.
#[test]
fn symbolic_dispatch_counters_split_cleanly() {
    let dir = std::env::temp_dir().join(format!("datareuse_cli_sym_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |name: &str, src: &str| {
        let kernel = dir.join(format!("{name}.dr"));
        std::fs::write(&kernel, src).unwrap();
        let metrics = dir.join(format!("{name}_metrics.json"));
        let (ok, _, stderr) = datareuse(&[
            "explore",
            kernel.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ]);
        assert!(ok, "{stderr}");
        let doc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let counter = |n: &str| {
            doc.get("counters")
                .and_then(|c| c.get(n))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        (counter("symbolic_hits"), counter("sim_fallbacks"))
    };
    let (hits, fallbacks) = run(
        "conforming",
        "array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }",
    );
    assert!(hits >= 1, "conforming nest must take the symbolic path");
    assert_eq!(fallbacks, 0, "conforming nest must never fall back");
    let (_, fallbacks) = run(
        "diagonal",
        "array A[16][16]; for j in 0..8 { for k in 0..8 { read A[k][k]; } }",
    );
    assert!(fallbacks >= 1, "diagonal nest must take the fallback path");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--explain` carries the dispatch decision as a `symbolic-profile`
/// audit record naming the path taken.
#[test]
fn explain_log_records_the_symbolic_dispatch() {
    let path = temp_path("symbolic_explain.ndjson");
    let (ok, _, stderr) = datareuse(&[
        "explore",
        "me-small",
        "--array",
        "Old",
        "--explain",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let log = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let record = log
        .lines()
        .find(|l| l.contains("\"record\":\"symbolic-profile\""))
        .expect("symbolic-profile record present");
    let doc = Json::parse(record).unwrap();
    assert_eq!(doc.get("path").and_then(Json::as_str), Some("symbolic"));
    assert!(doc.get("c_tot").and_then(Json::as_u64).unwrap() > 0);
}

/// `--cross-validate` replays the Belady oracle over the analytical
/// result and reports agreement on stderr, keeping `--json` stdout
/// machine-clean.
#[test]
fn explore_cross_validate_passes_on_builtins() {
    for kernel in ["me-small", "fir"] {
        let (ok, _, stderr) = datareuse(&["explore", kernel, "--cross-validate"]);
        assert!(ok, "{kernel}: {stderr}");
        assert!(
            stderr.contains("cross-validation: PASS"),
            "{kernel}: {stderr}"
        );
    }
    let (ok, stdout, stderr) =
        datareuse(&["explore", "me-small", "--array", "Old", "--cross-validate", "--json"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("cross-validation: PASS"));
    assert!(stdout.trim().starts_with('{'), "stdout stays pure JSON");
    Json::parse(stdout.trim()).expect("report JSON parses");
}

#[test]
fn progress_flag_narrates_to_stderr() {
    let (ok, _, stderr) = datareuse(&["explore", "me-small", "--array", "Old", "--progress"]);
    assert!(ok, "{stderr}");
    // Even a short run prints the final summary line on shutdown.
    assert!(stderr.contains("[datareuse"), "stderr: {stderr}");
    assert!(stderr.contains("(done)"), "stderr: {stderr}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (ok, _, stderr) = datareuse(&["explode"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = datareuse(&["explore", "/nonexistent.dr"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
    let (ok, _, stderr) = datareuse(&["curve", "me-small"]);
    assert!(!ok);
    assert!(stderr.contains("--sizes"));
}

/// Runs the binary and returns (exit code, stderr).
fn exit_code_of(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_datareuse"))
        .args(args)
        .output()
        .expect("binary runs");
    (out.status.code(), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn usage_errors_exit_2_with_the_usage_summary() {
    // Unknown subcommand: usage error.
    let (code, stderr) = exit_code_of(&["explode"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("usage: datareuse"), "{stderr}");
    // Missing required flag: usage error.
    let (code, stderr) = exit_code_of(&["curve", "me-small"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("--sizes"), "{stderr}");
    assert!(stderr.contains("usage: datareuse"), "{stderr}");
    // No command at all: usage error.
    let (code, stderr) = exit_code_of(&[]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    // A *runtime* failure keeps exit code 1 and does not dump usage.
    let (code, stderr) = exit_code_of(&["explore", "/nonexistent.dr"]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(!stderr.contains("usage: datareuse"), "{stderr}");
}

#[test]
fn explain_log_reproduces_the_papers_fir_numbers() {
    let path = temp_path("fir_explain.ndjson");
    let (ok, stdout, stderr) = datareuse(&["explore", "fir", "--explain", path.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    // The report distills a `why` section from the same log.
    assert!(stdout.contains("why:"), "no why section in:\n{stdout}");
    assert!(stdout.contains("candidates:"), "{stdout}");
    let text = std::fs::read_to_string(&path).expect("explain log written");
    std::fs::remove_file(&path).ok();
    let records: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).expect("every explain line is JSON"))
        .collect();
    // Completeness: the summary tallies cover every candidate record.
    let candidates = records
        .iter()
        .filter(|r| r.get("record").and_then(Json::as_str) == Some("candidate"))
        .count() as u64;
    let summary = records
        .iter()
        .find(|r| r.get("record").and_then(Json::as_str) == Some("candidate-summary"))
        .expect("candidate-summary record");
    let tally = |k: &str| summary.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(
        tally("kept") + tally("bypass") + tally("pruned") + tally("dominated"),
        candidates
    );
    // The eq. 12–15 point of the paper: fir's maximum-reuse pair has
    // reuse vector (c', b') = (1, 1) with an anti-dependency over
    // (j_range, k_range) = (1024, 64), giving C_tot = 65536,
    // C_R = (j−c')(k−b') = 64449, fills = 1087, and A_Max = 64.
    let max = records
        .iter()
        .find(|r| {
            r.get("source")
                .and_then(|s| s.get("kind"))
                .and_then(Json::as_str)
                == Some("pair-max")
        })
        .expect("pair-max record");
    let field = |r: &Json, k: &str| r.get(k).and_then(Json::as_u64).expect(k);
    let vector = max.get("vector").expect("pair-max carries its vector");
    let (c, b) = (field(vector, "c_prime"), field(vector, "b_prime"));
    let (j, k) = (field(vector, "j_range"), field(vector, "k_range"));
    assert_eq!((c, b, j, k), (1, 1, 1024, 64));
    assert_eq!(vector.get("anti").and_then(Json::as_bool), Some(true));
    assert_eq!(field(max, "c_tot"), 65536);
    assert_eq!(field(max, "c_r"), 64449);
    assert_eq!(field(max, "fills"), 1087);
    assert_eq!(field(max, "a"), 64);
    // The record is self-consistent against its own reuse vector:
    // C_tot = j·k, C_R = (j−c')(k−b'), A = c'(k−b') + b' (anti-dep).
    assert_eq!(field(max, "c_tot"), j * k);
    assert_eq!(field(max, "c_r"), (j - c) * (k - b));
    assert_eq!(field(max, "a"), c * (k - b) + b);
    let f_r = max.get("f_r").and_then(Json::as_f64).expect("f_r");
    assert!((f_r - 65536.0 / 1087.0).abs() < 1e-9, "F_RMax = {f_r}");
}
