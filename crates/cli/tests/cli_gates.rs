//! End-to-end gates on the shipped `datareuse` binary.
//!
//! These pin the two contracts that only exist at the process level:
//!
//! - `--profile-out` writes a collapsed-stack profile whose self times
//!   sum back to the command's measured wall time (the `profile:
//!   wall_ns N` stderr line) within 5% — the partition invariant of the
//!   span-derived profiler, checked on a real `explore fir` run.
//! - `--alloc-profile` writes a memprofile whose self-byte rows sum
//!   back to the command's allocator delta (the `alloc: total_bytes N`
//!   stderr line) within 5% — the same partition invariant, on the
//!   bytes column.
//! - `scorecard` exits 7 (and only 7) when a metric regresses past its
//!   noise band against the baseline, exits 0 against a matching
//!   baseline, and writes/reads the `datareuse-scorecard-v1` shape.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_datareuse"))
}

/// A per-test scratch directory under the target tmpdir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "datareuse-cli-gates-{name}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn datareuse binary")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn profile_out_self_times_sum_to_the_measured_wall_time() {
    let scratch = Scratch::new("profile");
    let profile = scratch.path("fir.collapsed");
    let output = run(bin().args(["explore", "fir", "--profile-out"]).arg(&profile));
    let stderr = stderr_of(&output);
    assert!(output.status.success(), "explore failed:\n{stderr}");
    let wall_ns: f64 = stderr
        .lines()
        .find_map(|l| l.strip_prefix("profile: wall_ns "))
        .expect("stderr reports `profile: wall_ns N`")
        .trim()
        .parse()
        .expect("numeric wall time");
    let text = std::fs::read_to_string(&profile).expect("profile file written");
    assert!(
        text.lines().any(|l| l.starts_with("run")),
        "no root `run` stack in profile:\n{text}"
    );
    let mut self_sum = 0.0f64;
    for line in text.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("`stack SELF_NS` shape");
        assert!(!stack.is_empty() && !stack.contains('/'), "bad stack: {line}");
        let v: f64 = value.parse().expect("numeric self time");
        assert!(v > 0.0, "zero-self line emitted: {line}");
        self_sum += v;
    }
    // Self times partition the root span's total, and the root span
    // brackets the same region the wall clock measures.
    let ratio = self_sum / wall_ns;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "self-time sum {self_sum} vs wall {wall_ns} ns (ratio {ratio:.4}):\n{text}"
    );
}

#[test]
fn alloc_profile_self_bytes_sum_to_the_allocator_delta() {
    let scratch = Scratch::new("alloc-profile");
    let profile = scratch.path("fir.memprofile.json");
    // Span byte attribution is per-thread (a worker's allocations are
    // charged to the span the *worker* opens, not the one the spawning
    // thread holds), while the `alloc: total_bytes` stderr line is the
    // process-wide delta. Pinning them against each other therefore
    // needs a single-threaded run.
    let output = run(bin()
        .args(["explore", "fir", "--alloc-profile"])
        .arg(&profile)
        .env("DATAREUSE_THREADS", "1"));
    let stderr = stderr_of(&output);
    assert!(output.status.success(), "explore failed:\n{stderr}");
    let total_bytes: f64 = stderr
        .lines()
        .find_map(|l| l.strip_prefix("alloc: total_bytes "))
        .expect("stderr reports `alloc: total_bytes N`")
        .trim()
        .parse()
        .expect("numeric byte total");
    assert!(total_bytes > 0.0, "explore allocates:\n{stderr}");
    let text = std::fs::read_to_string(&profile).expect("alloc profile written");
    assert!(
        text.starts_with(r#"{"schema":"datareuse-memprofile-v1""#),
        "profile: {text}"
    );
    // Sum the self_bytes column by hand — the file is one canonical
    // JSON line, so a field scan is unambiguous.
    let mut self_sum = 0.0f64;
    let mut rows = 0usize;
    for piece in text.split(r#""self_bytes":"#).skip(1) {
        let digits: String = piece.chars().take_while(char::is_ascii_digit).collect();
        self_sum += digits.parse::<f64>().expect("numeric self_bytes");
        rows += 1;
    }
    assert!(rows >= 2, "expected nested rows in:\n{text}");
    assert!(text.contains(r#""path":"run""#), "root row present:\n{text}");
    // Self bytes partition the root span's total, and the root span
    // brackets (nearly) the same region the allocator delta measures.
    let ratio = self_sum / total_bytes;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "self-bytes sum {self_sum} vs allocator delta {total_bytes} (ratio {ratio:.4}):\n{text}"
    );
}

#[test]
fn profile_out_without_a_path_is_a_usage_error() {
    let output = run(bin().args(["explore", "fir", "--profile-out"]));
    assert_eq!(output.status.code(), Some(2), "stderr: {}", stderr_of(&output));
    assert!(stderr_of(&output).contains("--profile-out expects a file path"));
}

/// One minimal bench artifact the scorecard can fold: a single group
/// with one bench.
fn write_artifact(dir: &Path, group: &str, median_ns: u64) {
    std::fs::create_dir_all(dir).expect("create bench dir");
    std::fs::write(
        dir.join(format!("BENCH_{group}.json")),
        format!(
            r#"{{"group":"{group}","benches":[{{"id":"only","samples":3,"median_ns":{median_ns}}}]}}"#,
        ),
    )
    .expect("write bench artifact");
}

#[test]
fn scorecard_exits_seven_only_on_a_regression() {
    let scratch = Scratch::new("scorecard");
    let bench_dir = scratch.path("benchmarks");
    write_artifact(&bench_dir, "tiny", 1_000_000);
    let baseline = scratch.path("SCORECARD.json");
    let bench_dir = bench_dir.to_str().unwrap().to_string();
    let baseline_arg = baseline.to_str().unwrap().to_string();

    // Seed the baseline from the same artifacts, then compare: nothing
    // can regress (committed metrics identical, smoke within its 4x
    // band on the same machine).
    let seeded = run(bin().args([
        "scorecard",
        "--bench-dir",
        &bench_dir,
        "--baseline",
        &baseline_arg,
        "--update-baseline",
    ]));
    assert!(seeded.status.success(), "seed failed:\n{}", stderr_of(&seeded));
    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.starts_with(r#"{"schema":"datareuse-scorecard-v1""#), "baseline: {text}");
    let clean = run(bin().args([
        "scorecard",
        "--json",
        "--bench-dir",
        &bench_dir,
        "--baseline",
        &baseline_arg,
    ]));
    assert_eq!(
        clean.status.code(),
        Some(0),
        "clean compare:\n{}",
        stderr_of(&clean)
    );
    let doc = String::from_utf8_lossy(&clean.stdout).into_owned();
    assert!(doc.contains(r#""schema":"datareuse-scorecard-v1""#), "doc: {doc}");
    assert!(doc.contains(r#""id":"suite_tiny_median_ns""#), "doc: {doc}");
    assert!(doc.contains(r#""id":"smoke_explore_fir_ns""#), "doc: {doc}");
    // The memory half of the card: allocator-derived metrics ride along
    // with the timing smokes.
    for id in [
        "smoke_alloc_fir_bytes",
        "smoke_alloc_me_small_bytes",
        "smoke_alloc_symbolic_ratio",
        "smoke_serve_live_bytes",
    ] {
        assert!(doc.contains(&format!(r#""id":"{id}""#)), "missing {id}: {doc}");
    }
    assert!(doc.contains(r#""verdict":"#), "doc: {doc}");
    assert!(doc.contains(r#""regressed":0"#), "doc: {doc}");

    // Shrink the committed baseline value far below the measured suite
    // median: lower-is-better, so the unchanged measurement now reads
    // as a regression and the exit code must be exactly 7.
    std::fs::write(
        &baseline,
        text.replace("1000000", "10"),
    )
    .expect("tamper baseline");
    let regressed = run(bin().args([
        "scorecard",
        "--json",
        "--bench-dir",
        &bench_dir,
        "--baseline",
        &baseline_arg,
    ]));
    assert_eq!(
        regressed.status.code(),
        Some(7),
        "tampered compare:\n{}",
        stderr_of(&regressed)
    );
    let doc = String::from_utf8_lossy(&regressed.stdout).into_owned();
    assert!(doc.contains(r#""verdict":"regressed""#), "doc: {doc}");
    assert!(
        stderr_of(&regressed).contains("suite_tiny_median_ns"),
        "stderr names the regressed metric:\n{}",
        stderr_of(&regressed)
    );
}

#[test]
fn scorecard_against_a_missing_explicit_baseline_is_a_runtime_error() {
    let scratch = Scratch::new("scorecard-missing");
    let bench_dir = scratch.path("benchmarks");
    write_artifact(&bench_dir, "tiny", 1_000);
    let output = run(bin().args([
        "scorecard",
        "--bench-dir",
        bench_dir.to_str().unwrap(),
        "--baseline",
        scratch.path("nope.json").to_str().unwrap(),
    ]));
    assert_eq!(output.status.code(), Some(1), "stderr: {}", stderr_of(&output));
    assert!(stderr_of(&output).contains("cannot read baseline"));
}
