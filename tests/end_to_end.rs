//! Cross-crate integration tests: the full analyze → simulate → evaluate →
//! generate pipeline on every kernel of the workload library.

use datareuse::codegen::{run_schedule, verify_fig8_addressing, Strategy};
use datareuse::model::{max_reuse, CandidateSource, PairGeometry};
use datareuse::prelude::*;

/// Analytical exploration, Belady cross-check and Pareto sanity for one
/// signal of one program.
fn full_pipeline(program: &Program, array: &str) {
    let opts = ExploreOptions::default();
    let ex = explore_signal(program, array, &opts).expect("exploration succeeds");
    assert!(ex.c_tot > 0);
    let trace = read_addresses(program, array);
    assert_eq!(ex.c_tot, trace.len() as u64, "C_tot matches the trace");

    for c in &ex.candidates {
        assert!(c.is_useful());
        // The bypass-capable Belady optimum lower-bounds the upstream
        // traffic of ANY feasible scheme of the same size (plain OPT is
        // handicapped at tiny sizes by forced fill-on-miss).
        let bound = opt_simulate_bypass(&trace, c.size).misses();
        assert!(
            bound <= c.fills + c.bypasses,
            "{array}: candidate at size {} claims {} upstream, OPT needs {}",
            c.size,
            c.fills + c.bypasses,
            bound
        );
        let sim = opt_simulate(&trace, c.size);
        // Exact candidates must be close to the optimum.
        if c.exact && c.bypasses == 0 {
            assert!(
                (c.fills as f64) <= 2.0 * sim.fills as f64,
                "{array}: exact candidate at size {} too far from OPT",
                c.size
            );
        }
    }

    let tech = MemoryTechnology::new();
    let front = ex.pareto(&opts, &tech, &BitCount);
    assert!(!front.is_empty());
    assert_eq!(front[0].size, 0.0, "baseline opens the front");
    for w in front.windows(2) {
        assert!(w[1].size > w[0].size && w[1].power < w[0].power);
    }
    for p in &front {
        p.payload.0.validate().expect("front chains are well-formed");
    }
}

#[test]
fn motion_estimation_pipeline() {
    let me = MotionEstimation::SMALL;
    let p = me.program();
    full_pipeline(&p, MotionEstimation::OLD);
    full_pipeline(&p, MotionEstimation::NEW);
}

#[test]
fn susan_pipeline_interleaved_and_unfolded() {
    let s = Susan::SMALL;
    full_pipeline(&s.program(), Susan::IMAGE);
    full_pipeline(&s.unfolded_program(), Susan::IMAGE);
}

#[test]
fn conv_matmul_sobel_downsample_pipelines() {
    full_pipeline(
        &Conv2d {
            height: 12,
            width: 12,
            tap_rows: 3,
            tap_cols: 3,
        }
        .program(),
        Conv2d::IMAGE,
    );
    let mm = MatMul::square(8).program();
    full_pipeline(&mm, MatMul::A);
    full_pipeline(&mm, MatMul::B);
    full_pipeline(
        &Sobel {
            height: 12,
            width: 14,
        }
        .program(),
        Sobel::IMAGE,
    );
    full_pipeline(
        &Downsample {
            height: 16,
            width: 16,
            factor: 2,
        }
        .program(),
        Downsample::IMAGE,
    );
}

#[test]
fn motion_compensation_merges_interpolation_taps() {
    // The four half-pel taps are translations of one another: the merged
    // copy-candidate must serve all of them from one window buffer, and
    // its analytic reuse factor must track the Belady optimum.
    let mc = MotionCompensation::SMALL;
    let p = mc.program();
    full_pipeline(&p, MotionCompensation::REF);
    let ex =
        explore_signal(&p, MotionCompensation::REF, &ExploreOptions::default()).expect("explores");
    let merged: Vec<_> = ex
        .candidates
        .iter()
        .filter(|c| matches!(c.source, CandidateSource::MergedFootprint { .. }))
        .collect();
    assert!(!merged.is_empty(), "taps should merge");
    let trace = read_addresses(&p, MotionCompensation::REF);
    for c in merged {
        assert_eq!(c.c_tot, mc.ref_reads());
        let sim = opt_simulate(&trace, c.size);
        let rel = (c.reuse_factor() - sim.reuse_factor()).abs() / sim.reuse_factor();
        assert!(rel < 0.25, "size {}: {rel:.3} off Belady", c.size);
    }
}

#[test]
fn eq3_level_independence_on_motion_estimation() {
    // The eq. 3 idealization: each level's fill count is independent of
    // the other levels. Build a two-level chain from the footprint
    // candidates and compare cascaded vs standalone traffic.
    let p = MotionEstimation::SMALL.program();
    let levels = footprint_levels(&p.nests()[0], 1).expect("Old levels");
    assert!(levels.len() >= 2);
    let inner = levels.last().unwrap();
    let outer = &levels[levels.len() - 2];
    let trace = read_addresses(&p, MotionEstimation::OLD);
    let cascade = datareuse::trace::hierarchy_simulate(&trace, &[inner.size, outer.size]);
    let inner_alone = opt_simulate(&trace, inner.size);
    let outer_alone = opt_simulate(&trace, outer.size);
    // The processor-facing level sees the raw stream: exactly equal.
    assert_eq!(cascade.levels[0].fills, inner_alone.fills);
    // The outer level sees the inner's fill stream. Under optimal
    // replacement the cascade can only help (hits removed from the stream
    // compress reuse distances), so eq. 3's independence is a *safe*
    // idealization: the chain never does worse than the per-level C_j.
    assert!(cascade.levels[1].fills <= outer_alone.fills);
    let rel = (outer_alone.fills - cascade.levels[1].fills) as f64 / outer_alone.fills as f64;
    assert!(rel < 0.10, "independence off by {rel:.3}");
    assert_eq!(cascade.background_reads, cascade.levels[1].fills);
}

#[test]
fn fir_anti_diagonal_pipeline_and_schedule() {
    // x[n − t + T − 1] is the anti-diagonal orientation: b = 1, c = −1.
    let fir = Fir {
        outputs: 64,
        taps: 8,
    };
    let p = fir.program();
    full_pipeline(&p, Fir::SAMPLES);
    full_pipeline(&p, Fir::COEFFS);

    let geom = PairGeometry::from_access(&p.nests()[0], 0, 0, 1).expect("pair (n, t)");
    assert_eq!(
        geom.class,
        datareuse::model::ReuseClass::Vector {
            bp: 1,
            cp: 1,
            anti: true
        }
    );
    let point = max_reuse(&geom).expect("reuse");
    // A_Max(anti) = c'(kR − b') + b' = taps − 1 + 1 = taps.
    assert_eq!(point.size, 8);
    let trace = read_addresses(&p, Fir::SAMPLES);
    assert_eq!(opt_simulate(&trace, point.size).fills, point.fills);
    let report = run_schedule(&p, 0, 0, 0, 1, Strategy::MaxReuse).expect("runs");
    assert_eq!(report.value_errors, 0);
    assert_eq!(report.fills, point.fills);
    assert!(report.max_occupancy <= point.size);
}

#[test]
fn susan_merged_candidate_matches_simulation_tightly() {
    let s = Susan::SMALL;
    let program = s.program();
    let ex = explore_signal(&program, Susan::IMAGE, &ExploreOptions::default()).expect("explores");
    let merged = ex
        .candidates
        .iter()
        .find(|c| matches!(c.source, CandidateSource::MergedFootprint { .. }))
        .expect("merged row-band candidate exists");
    let trace = read_addresses(&program, Susan::IMAGE);
    let sim = opt_simulate(&trace, merged.size);
    let rel = (merged.reuse_factor() - sim.reuse_factor()).abs() / sim.reuse_factor();
    assert!(rel < 0.05, "merged candidate {rel:.3} off the Belady optimum");
}

#[test]
fn me_section_6_3_numbers_hold_in_the_full_kernel() {
    // Inside the full QCIF kernel the paper's inner-nest analysis gives
    // b' = c' = 1, A_Max = n(n-1) = 56, F_RMax = 128/23.
    let p = MotionEstimation::QCIF.program();
    let geom = PairGeometry::from_access(&p.nests()[0], 1, 3, 5).expect("pair (i4, i6)");
    let point = max_reuse(&geom).expect("carries reuse");
    assert_eq!(point.size, 56);
    assert!((point.reuse_factor() - 128.0 / 23.0).abs() < 1e-12);
    assert_eq!(point.c_tot, MotionEstimation::QCIF.old_reads());
}

#[test]
fn generated_schedules_are_exact_across_kernels() {
    // (program, access, outer, inner) triples with known reuse pairs.
    let me = MotionEstimation::SMALL.program();
    let conv = Conv2d {
        height: 10,
        width: 10,
        tap_rows: 3,
        tap_cols: 3,
    }
    .program();
    let cases: &[(&Program, usize, usize, usize)] = &[
        (&me, 1, 3, 5),   // ME Old over (i4, i6)
        (&conv, 0, 1, 3), // conv image over (x, j)
        (&conv, 0, 0, 2), // conv image over (y, i)
    ];
    for &(program, access, outer, inner) in cases {
        let geom = PairGeometry::from_access(&program.nests()[0], access, outer, inner)
            .expect("geometry");
        let point = max_reuse(&geom).expect("reuse exists");
        let report =
            run_schedule(program, 0, access, outer, inner, Strategy::MaxReuse).expect("runs");
        assert_eq!(report.value_errors, 0);
        assert_eq!(report.fills, point.fills);
        assert!(report.max_occupancy <= point.size);
    }
}

#[test]
fn fig8_template_addressing_is_sound_on_me() {
    let me = MotionEstimation::SMALL.program();
    let r = verify_fig8_addressing(&me, 0, 1, 3, 5).expect("covered geometry");
    assert_eq!(r.collisions, 0);
    assert!(r.reads_checked > 0);
}

#[test]
fn dsl_roundtrip_through_display() {
    // Program's Display emits valid DSL: print → parse → identical IR.
    for program in [
        MotionEstimation::SMALL.program(),
        Susan::SMALL.program(),
        MatMul::square(4).program(),
        Downsample {
            height: 8,
            width: 8,
            factor: 2,
        }
        .program(),
    ] {
        let text = program.to_string();
        let reparsed = parse_program(&text).expect("display output parses");
        assert_eq!(program, reparsed, "roundtrip changed the IR:\n{text}");
    }
}

#[test]
fn loop_order_freedom_changes_the_exploration() {
    // DTSE step 2 leaves loop-order freedom; the exploration must reflect
    // it: B's best reuse differs between ijk and jki orders.
    let tech = MemoryTechnology::new();
    let opts = ExploreOptions::default();
    let mut best = Vec::new();
    for order in [
        datareuse::kernels::MatMulOrder::Ijk,
        datareuse::kernels::MatMulOrder::Jki,
    ] {
        let mm = datareuse::kernels::MatMul {
            n: 8,
            m: 8,
            p: 8,
            order,
        };
        let ex = explore_signal(&mm.program(), MatMul::B, &opts).expect("explores");
        let front = ex.pareto(&opts, &tech, &BitCount);
        best.push(front.last().expect("front").power);
    }
    assert_ne!(best[0], best[1]);
}

#[test]
fn hardware_caches_lose_to_compile_time_placement() {
    // The paper's motivation: a hardware cache "only uses knowledge about
    // previous accesses". At the analytical candidate size, Belady (which
    // our schedule realizes) must beat LRU and FIFO on ME.
    let p = MotionEstimation::SMALL.program();
    let geom = PairGeometry::from_access(&p.nests()[0], 1, 3, 5).expect("pair");
    let point = max_reuse(&geom).expect("reuse");
    let trace = read_addresses(&p, MotionEstimation::OLD);
    let opt = opt_simulate(&trace, point.size);
    assert_eq!(opt.fills, point.fills);
    assert!(lru_simulate(&trace, point.size).misses() > opt.misses());
    assert!(fifo_simulate(&trace, point.size).misses() > opt.misses());
}
