//! End-to-end machine validation of the generated code: emit the
//! self-checking C program for a kernel and strategy, compile it with the
//! system C compiler, run the binary, and require the original and
//! transformed access streams to produce identical checksums.
//!
//! Skipped silently when no C compiler is installed.

use std::process::Command;

use datareuse::codegen::{
    emit_selfcheck, emit_selfcheck_adopt, emit_selfcheck_band, Strategy, TemplateOptions,
};
use datareuse::prelude::*;

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn compile_and_run(source: &str, tag: &str) {
    let dir = std::env::temp_dir().join(format!("datareuse_selfcheck_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let c_path = dir.join("check.c");
    let bin_path = dir.join("check");
    std::fs::write(&c_path, source).expect("write C source");
    let compile = Command::new("cc")
        .arg("-O1")
        .arg("-Wall")
        .arg("-Werror")
        .arg("-o")
        .arg(&bin_path)
        .arg(&c_path)
        .output()
        .expect("invoke cc");
    assert!(
        compile.status.success(),
        "cc failed for {tag}:\n{}\n--- source ---\n{source}",
        String::from_utf8_lossy(&compile.stderr)
    );
    let run = Command::new(&bin_path).output().expect("run self-check");
    assert!(
        run.status.success(),
        "self-check failed for {tag}: {}",
        String::from_utf8_lossy(&run.stdout)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.starts_with("OK"), "unexpected output: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generated_c_matches_original_for_window_kernel() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let p = parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")
        .expect("parses");
    for (tag, strategy) in [
        ("max", Strategy::MaxReuse),
        ("partial", Strategy::Partial { gamma: 3 }),
        ("bypass", Strategy::PartialBypass { gamma: 3 }),
    ] {
        let opts = TemplateOptions {
            strategy,
            single_assignment: false,
        };
        let c = emit_selfcheck(&p, 0, 0, 0, 1, opts).expect("emits");
        compile_and_run(&c, tag);
    }
}

#[test]
fn generated_c_matches_original_for_motion_estimation() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let p = MotionEstimation::SMALL.program();
    // The §6.3 pair (i4, i6) on the Old access, max reuse and a partial
    // bypass variant.
    for (tag, strategy) in [
        ("me_max", Strategy::MaxReuse),
        ("me_bypass", Strategy::PartialBypass { gamma: 2 }),
    ] {
        let opts = TemplateOptions {
            strategy,
            single_assignment: false,
        };
        let c = emit_selfcheck(&p, 0, 1, 3, 5, opts).expect("emits");
        compile_and_run(&c, tag);
    }
}

#[test]
fn adopt_strength_reduced_c_matches_original() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    // The induction-variable addressing must be bit-identical to the
    // modulo form on every strategy and on multi-slice nests.
    let window =
        parse_program("array A[23]; for j in 0..16 { for k in 0..8 { read A[j + k]; } }")
            .expect("parses");
    for (tag, strategy) in [
        ("adopt_max", Strategy::MaxReuse),
        ("adopt_partial", Strategy::Partial { gamma: 3 }),
        ("adopt_bypass", Strategy::PartialBypass { gamma: 3 }),
    ] {
        let opts = TemplateOptions {
            strategy,
            single_assignment: false,
        };
        let c = emit_selfcheck_adopt(&window, 0, 0, 0, 1, opts).expect("emits");
        compile_and_run(&c, tag);
    }
    let me = MotionEstimation::SMALL.program();
    let c = emit_selfcheck_adopt(&me, 0, 1, 3, 5, TemplateOptions::default()).expect("emits");
    compile_and_run(&c, "adopt_me");
    let gcd = parse_program(
        "array A[70]; for j in 0..12 { for k in 0..10 { read A[2*j + 4*k]; } }",
    )
    .expect("parses");
    let c = emit_selfcheck_adopt(&gcd, 0, 0, 0, 1, TemplateOptions::default()).expect("emits");
    compile_and_run(&c, "adopt_gcd");
}

#[test]
fn band_copy_c_matches_original_across_depths() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    // Footprint-level band buffers on ME (Old), conv2d and FIR: every
    // supported depth must produce a bit-identical access stream.
    let me = MotionEstimation::SMALL.program();
    for depth in [1usize, 2, 3, 4] {
        let c = emit_selfcheck_band(&me, 0, 1, depth)
            .unwrap_or_else(|e| panic!("ME depth {depth}: {e}"));
        compile_and_run(&c, &format!("band_me_{depth}"));
    }
    let conv = Conv2d {
        height: 10,
        width: 10,
        tap_rows: 3,
        tap_cols: 3,
    }
    .program();
    for depth in [1usize, 2, 3] {
        if let Ok(c) = emit_selfcheck_band(&conv, 0, 0, depth) {
            compile_and_run(&c, &format!("band_conv_{depth}"));
        }
    }
    let fir = Fir {
        outputs: 32,
        taps: 8,
    }
    .program();
    if let Ok(c) = emit_selfcheck_band(&fir, 0, 0, 1) {
        compile_and_run(&c, "band_fir");
    }
}

#[test]
fn generated_c_matches_original_for_gcd_patterns() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    for (tag, src) in [
        (
            "coprime",
            "array A[60]; for j in 0..12 { for k in 0..10 { read A[2*j + 3*k]; } }",
        ),
        (
            "gcd2",
            "array A[70]; for j in 0..12 { for k in 0..10 { read A[2*j + 4*k]; } }",
        ),
        (
            "wide_b",
            "array A[95]; for j in 0..30 { for k in 0..8 { read A[3*j + k]; } }",
        ),
        (
            "k_invariant",
            // c' = 0: the scalar-buffer degenerate form of the template.
            "array A[12]; for j in 0..12 { for k in 0..8 { read A[j]; } }",
        ),
        (
            "k_only",
            // b' = 0: whole-row buffer reused across every j.
            "array A[8]; for j in 0..12 { for k in 0..8 { read A[k]; } }",
        ),
    ] {
        let p = parse_program(src).expect("parses");
        let c = emit_selfcheck(&p, 0, 0, 0, 1, TemplateOptions::default()).expect("emits");
        compile_and_run(&c, tag);
    }
}
