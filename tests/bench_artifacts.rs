//! Guards over the committed benchmark baselines in `benchmarks/`.
//!
//! Every `BENCH_<group>.json` written by `cargo bench -p datareuse-bench`
//! and checked in must parse with the repo's own [`Json`] reader and
//! follow the harness schema, and the symbolic baseline must show the
//! headline claim of the symbolic engine: computing a reuse profile in
//! closed form is at least 10x faster than trace simulation on a
//! depth-3 nest. `scripts/verify.sh` re-measures the same ratio fresh;
//! this test pins the committed artifact.

use std::fs;
use std::path::PathBuf;

use datareuse::model::Json;

fn benchmarks_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benchmarks")
}

/// All committed artifacts, parsed — panics with the file name on any
/// unreadable or unparseable artifact.
fn artifacts() -> Vec<(String, Json)> {
    let mut out = Vec::new();
    for entry in fs::read_dir(benchmarks_dir()).expect("benchmarks/ directory exists") {
        let path = entry.expect("readable dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
        let json = Json::parse(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"));
        out.push((name, json));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn median_ns(artifact: &Json, id: &str) -> f64 {
    artifact
        .get("benches")
        .and_then(Json::as_array)
        .expect("benches array")
        .iter()
        .find(|b| b.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("bench id {id} missing"))
        .get("median_ns")
        .and_then(Json::as_f64)
        .expect("median_ns number")
}

#[test]
fn committed_bench_artifacts_parse_and_follow_the_schema() {
    let artifacts = artifacts();
    assert!(!artifacts.is_empty(), "no BENCH_*.json committed under benchmarks/");
    for (name, json) in &artifacts {
        let group = json
            .get("group")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{name}: missing group"));
        assert_eq!(
            name, &format!("BENCH_{group}.json"),
            "{name}: file name does not match its group"
        );
        let benches = json
            .get("benches")
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{name}: missing benches array"));
        assert!(!benches.is_empty(), "{name}: empty benches array");
        for bench in benches {
            let id = bench
                .get("id")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{name}: bench without id"));
            for field in ["samples", "min_ns", "median_ns", "mean_ns"] {
                let v = bench
                    .get(field)
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| panic!("{name}/{id}: missing {field}"));
                assert!(v > 0.0, "{name}/{id}: non-positive {field}");
            }
        }
    }
}

#[test]
fn symbolic_baseline_covers_every_bench_group() {
    let names: Vec<String> = artifacts().into_iter().map(|(n, _)| n).collect();
    for group in [
        "analytical_vs_simulation",
        "batch_and_hierarchy",
        "corpus",
        "model_stages",
        "pareto_and_codegen",
        "policies",
        "serve_latency",
        "serve_ops",
        "serve_scaling",
        "serve_throughput",
        "stack_distances",
        "symbolic_vs_simulation",
    ] {
        let want = format!("BENCH_{group}.json");
        assert!(names.contains(&want), "missing committed baseline {want}");
    }
}

#[test]
fn the_scaling_baseline_reports_a_saturation_point_at_10k_connections() {
    let artifacts = artifacts();
    let (_, scaling) = artifacts
        .iter()
        .find(|(n, _)| n == "BENCH_serve_scaling.json")
        .expect("serve_scaling baseline committed");
    // The committed artifact must come from a run that actually drove
    // ten thousand concurrent connections...
    let top_rung = scaling
        .get("benches")
        .and_then(Json::as_array)
        .expect("benches array")
        .iter()
        .filter_map(|b| b.get("elements").and_then(Json::as_f64))
        .fold(0.0f64, f64::max);
    assert!(
        top_rung >= 10_000.0,
        "largest rung covers only {top_rung} connections"
    );
    // ...and record where throughput saturated, with the fields the
    // capacity-planning section of docs/SERVING.md is written against.
    let saturation = scaling.get("saturation").expect("saturation object");
    for field in ["connections", "rps", "p99_ns", "open_connections"] {
        let v = saturation
            .get(field)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("saturation missing {field}"));
        assert!(v > 0.0, "non-positive saturation {field}");
    }
}

#[test]
fn the_corpus_baseline_sweeps_the_generated_workloads_symbolically() {
    let artifacts = artifacts();
    let (_, corpus) = artifacts
        .iter()
        .find(|(n, _)| n == "BENCH_corpus.json")
        .expect("corpus baseline committed");
    // One bench per generated kernel, with the iteration-domain size as
    // the `elements` axis.
    let benches = corpus
        .get("benches")
        .and_then(Json::as_array)
        .expect("benches array");
    assert!(
        benches.len() >= 36,
        "corpus sweep covers only {} kernels",
        benches.len()
    );
    for bench in benches {
        let id = bench.get("id").and_then(Json::as_str).expect("bench id");
        assert!(id.starts_with("gen-"), "non-corpus bench id `{id}`");
        let elements = bench.get("elements").and_then(Json::as_f64).expect("elements");
        assert!(elements > 0.0, "{id}: empty iteration domain");
    }
    // The sweep must be served by the symbolic engine: the einsum
    // lowerer only emits conforming affine nests, so a fallback means a
    // regression in either the lowerer or the dispatch boundary.
    let symbolic = corpus.get("symbolic").expect("symbolic summary");
    let hits = symbolic.get("hits").and_then(Json::as_f64).expect("hits");
    let hit_rate = symbolic
        .get("hit_rate")
        .and_then(Json::as_f64)
        .expect("hit_rate");
    assert!(hits > 0.0, "no symbolic hits recorded");
    assert!(
        hit_rate >= 0.99,
        "symbolic hit rate {hit_rate} below 0.99 over the corpus"
    );
}

#[test]
fn the_committed_scorecard_covers_every_suite_and_headline_metric() {
    use datareuse::obs::{Direction, Scorecard};
    let text = fs::read_to_string(benchmarks_dir().join("SCORECARD.json"))
        .expect("benchmarks/SCORECARD.json committed (datareuse scorecard --update-baseline)");
    let doc = Json::parse(&text).expect("SCORECARD.json parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("datareuse-scorecard-v1")
    );
    let card = Scorecard::from_json(&doc).expect("scorecard schema");
    assert!(!card.metrics.is_empty(), "empty scorecard baseline");
    for m in &card.metrics {
        assert!(m.value.is_finite() && m.value > 0.0, "{}: bad value {}", m.id, m.value);
        assert!(m.noise > 0.0, "{}: non-positive noise band", m.id);
    }
    // Every committed BENCH suite folds to a suite median, so the
    // baseline must carry one metric per artifact on disk.
    for (name, _) in artifacts() {
        let group = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json");
        let id = format!("suite_{group}_median_ns");
        let m = card
            .metric(&id)
            .unwrap_or_else(|| panic!("scorecard baseline missing {id}"));
        assert_eq!(m.direction, Direction::LowerIsBetter, "{id}: wrong direction");
    }
    // The headline metrics and the smoke sweep must be pinned too.
    for id in [
        "serve_p50_ns",
        "serve_p99_ns",
        "serve_cache_speedup",
        "serve_saturation_rps",
        "corpus_symbolic_hit_rate",
        "symbolic_speedup_depth3",
        "symbolic_speedup_me_small",
        "smoke_explore_fir_ns",
        "smoke_explore_me_small_ns",
        "smoke_symbolic_hit_rate",
        "smoke_symbolic_agreement",
    ] {
        assert!(card.metric(id).is_some(), "scorecard baseline missing {id}");
    }
}

#[test]
fn symbolic_baseline_is_at_least_10x_faster_than_simulation() {
    let artifacts = artifacts();
    let (_, symbolic) = artifacts
        .iter()
        .find(|(n, _)| n == "BENCH_symbolic_vs_simulation.json")
        .expect("symbolic baseline committed");
    for (fast, slow) in [
        ("symbolic_profile_depth3", "simulate_one_point_depth3"),
        ("symbolic_profile_me_small", "simulate_one_point_me_small"),
    ] {
        let f = median_ns(symbolic, fast);
        let s = median_ns(symbolic, slow);
        assert!(
            s >= 10.0 * f,
            "{slow} ({s:.0} ns) is not ≥10x slower than {fast} ({f:.0} ns)"
        );
    }
}
