//! Drift guards between the serving code and `docs/SERVING.md`.
//!
//! The operator runbook documents the wire protocol, the metrics
//! surface, and the `query` exit codes. Each of those lives in code as
//! an enumerable constant (`protocol::OP_NAMES`, `Counter::ALL`,
//! `Gauge::ALL`, `Hist::ALL`, the `E_*` error codes, the CLI usage
//! text), so documentation rot is checkable: every name the code
//! exposes must appear in the runbook, and every op section in the
//! runbook must name a real wire op. `scripts/verify.sh` runs this
//! test; adding an op or a serve counter without documenting it fails
//! the build, as does documenting an op that no longer exists.

use std::fs;
use std::path::PathBuf;

use datareuse::obs::{Counter, Gauge, Hist};
use datareuse::server::protocol::{
    E_BAD_REQUEST, E_INTERNAL, E_OVERLOADED, E_SHUTTING_DOWN, E_TIMEOUT, OP_NAMES,
};

fn repo_file(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_wire_op_has_a_runbook_section() {
    let doc = repo_file("docs/SERVING.md");
    for op in OP_NAMES {
        assert!(
            doc.contains(&format!("### `{op}`")),
            "docs/SERVING.md has no `### `{op}`` section for the `{op}` op"
        );
    }
}

#[test]
fn every_runbook_op_section_names_a_real_wire_op() {
    let doc = repo_file("docs/SERVING.md");
    let mut checked = 0;
    for line in doc.lines() {
        // Op sections are exactly "### `name`"; flag and file sections
        // use other heading shapes, and any h3 whose backticked name is
        // a bare lowercase word is held to the op registry.
        let Some(name) = line
            .strip_prefix("### `")
            .and_then(|rest| rest.strip_suffix('`'))
        else {
            continue;
        };
        if !name.chars().all(|c| c.is_ascii_lowercase()) {
            continue;
        }
        assert!(
            OP_NAMES.contains(&name),
            "docs/SERVING.md documents `{name}`, which is not a wire op \
             (protocol::OP_NAMES = {OP_NAMES:?})"
        );
        checked += 1;
    }
    assert_eq!(
        checked,
        OP_NAMES.len(),
        "expected one op section per wire op"
    );
}

#[test]
fn every_serve_metric_in_code_is_documented() {
    let doc = repo_file("docs/SERVING.md");
    let counters = Counter::ALL.iter().map(|c| c.name());
    let gauges = Gauge::ALL.iter().map(|g| g.name());
    let hists = Hist::ALL.iter().map(|h| h.name());
    for name in counters.chain(gauges).chain(hists) {
        if !name.starts_with("serve_") {
            continue; // exploration-side metrics live in other docs
        }
        assert!(
            doc.contains(&format!("`{name}`")),
            "serve metric `{name}` is not documented in docs/SERVING.md"
        );
    }
}

#[test]
fn every_protocol_error_code_is_documented() {
    let doc = repo_file("docs/SERVING.md");
    for code in [E_BAD_REQUEST, E_OVERLOADED, E_TIMEOUT, E_SHUTTING_DOWN, E_INTERNAL] {
        assert!(
            doc.contains(&format!("`{code}`")),
            "error code `{code}` is not documented in docs/SERVING.md"
        );
    }
}

#[test]
fn every_query_exit_code_has_a_table_row() {
    // The CLI's usage text is the authoritative enumeration of `query`
    // exit codes; mine it rather than duplicating the list here.
    let cli = repo_file("crates/cli/src/main.rs");
    let idx = cli
        .find("query exit codes:")
        .expect("usage text enumerates the query exit codes");
    let sentence = &cli[idx..cli[idx..].find('"').map_or(cli.len(), |e| idx + e)];
    let mut codes: Vec<u32> = sentence
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .collect();
    codes.push(2); // usage errors, documented separately from `query`
    codes.sort_unstable();
    codes.dedup();
    assert!(codes.len() >= 6, "mined too few exit codes: {codes:?}");
    let doc = repo_file("docs/SERVING.md");
    for code in codes {
        assert!(
            doc.contains(&format!("| {code} |")),
            "exit code {code} has no row in the docs/SERVING.md exit-code table"
        );
    }
}

#[test]
fn the_usage_text_and_docs_cover_the_expression_workflow() {
    // The usage summary is the authoritative surface of the CLI; the
    // expression front end's flags and subcommands must appear there.
    let cli = repo_file("crates/cli/src/main.rs");
    let usage_start = cli.find("const USAGE:").expect("usage text present");
    let usage = &cli[usage_start..cli[usage_start..]
        .find("\";")
        .map_or(cli.len(), |e| usage_start + e)];
    for needle in ["bench-corpus", "--expr", "--rust", "kernels [--json]"] {
        assert!(
            usage.contains(needle),
            "usage text does not mention `{needle}`"
        );
    }
    // The quickstart and architecture docs must describe the same
    // workflow the code ships.
    let readme = repo_file("README.md");
    for needle in ["C[i,j] += A[i,k] * B[k,j]", "gen-matmul-32x32x32", "--expr"] {
        assert!(readme.contains(needle), "README.md does not show `{needle}`");
    }
    let arch = repo_file("docs/ARCHITECTURE.md");
    for needle in ["exprlang", "corpus"] {
        assert!(
            arch.contains(needle),
            "docs/ARCHITECTURE.md does not describe `{needle}`"
        );
    }
    let experiments = repo_file("EXPERIMENTS.md");
    assert!(
        experiments.contains("bench-corpus"),
        "EXPERIMENTS.md does not walk through the corpus sweep"
    );
}

#[test]
fn the_runbook_is_linked_from_the_readme_and_architecture_docs() {
    for (file, link) in [
        ("README.md", "docs/SERVING.md"),
        ("docs/ARCHITECTURE.md", "SERVING.md"),
        ("README.md", "docs/OBSERVABILITY.md"),
        ("docs/SERVING.md", "OBSERVABILITY.md"),
    ] {
        let text = repo_file(file);
        assert!(
            text.contains(link),
            "{file} does not link to {link}"
        );
    }
}

#[test]
fn every_metric_in_code_is_documented_in_the_observability_guide() {
    // docs/OBSERVABILITY.md is the registry reference: unlike the
    // serving runbook (which only owes sections to `serve_*` metrics),
    // it must name every counter, gauge, and histogram the code can
    // emit, backticked so readers can grep the wire name.
    let doc = repo_file("docs/OBSERVABILITY.md");
    let counters = Counter::ALL.iter().map(|c| c.name());
    let gauges = Gauge::ALL.iter().map(|g| g.name());
    let hists = Hist::ALL.iter().map(|h| h.name());
    for name in counters.chain(gauges).chain(hists) {
        assert!(
            doc.contains(&format!("`{name}`")),
            "metric `{name}` is not documented in docs/OBSERVABILITY.md"
        );
    }
}

#[test]
fn the_usage_text_and_observability_guide_cover_the_profiler_and_scorecard() {
    let cli = repo_file("crates/cli/src/main.rs");
    let usage_start = cli.find("const USAGE:").expect("usage text present");
    let usage = &cli[usage_start..cli[usage_start..]
        .find("\";")
        .map_or(cli.len(), |e| usage_start + e)];
    for needle in [
        "scorecard",
        "--profile-out",
        "--alloc-profile",
        "--update-baseline",
        "--baseline",
    ] {
        assert!(
            usage.contains(needle),
            "usage text does not mention `{needle}`"
        );
    }
    let doc = repo_file("docs/OBSERVABILITY.md");
    for needle in [
        "--profile-out",
        "datareuse-profile-v1",
        "--alloc-profile",
        "datareuse-memprofile-v1",
        "memstats",
        "datareuse-memstats-v1",
        "smoke_alloc_fir_bytes",
        "smoke_alloc_me_small_bytes",
        "smoke_alloc_symbolic_ratio",
        "smoke_serve_live_bytes",
        "datareuse-scorecard-v1",
        "datareuse-metrics-v2",
        "datareuse-series-v1",
        "benchmarks/SCORECARD.json",
        "--update-baseline",
        "exit 7",
        "within-noise",
    ] {
        assert!(
            doc.contains(needle),
            "docs/OBSERVABILITY.md does not mention `{needle}`"
        );
    }
}
