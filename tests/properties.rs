//! Property-based tests over the core invariants, driven by proptest.
//!
//! The central property is the paper's own validation, mechanized: for
//! *arbitrary* affine double nests, the analytical maximum-reuse point
//! must coincide with Belady-optimal simulation, and the generated copy
//! schedule must realize it exactly.

use proptest::prelude::*;
use proptest::strategy::Strategy;

use datareuse::codegen::{run_schedule, verify_fig8_addressing, Strategy as CopyStrategy};
use datareuse::model::{max_reuse, partial_sweep, PairGeometry};
use datareuse::prelude::*;
use datareuse::steps::{distribute_cycles, map_inplace, PortBudget};

/// A random double nest `for j in 0..jr { for k in 0..kr { read A[b*j + c*k + off] } }`
/// with the offset chosen so indices stay in bounds.
fn double_nest() -> impl Strategy<Value = (Program, i64, i64)> {
    (2i64..=12, 2i64..=10, -4i64..=4, -4i64..=4).prop_map(|(jr, kr, b, c)| {
        let min = [b * (jr - 1), 0].into_iter().min().unwrap()
            + [c * (kr - 1), 0].into_iter().min().unwrap();
        let max = [b * (jr - 1), 0].into_iter().max().unwrap()
            + [c * (kr - 1), 0].into_iter().max().unwrap();
        let off = -min;
        let extent = max - min + 1;
        let src = format!(
            "array A[{extent}]; for j in 0..{jr} {{ for k in 0..{kr} {{ read A[{b}*j + {c}*k + {off}]; }} }}"
        );
        (parse_program(&src).expect("generated program parses"), b, c)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Analytical `A_Max`/fills coincide with the Belady optimum for
    /// arbitrary coefficients, including negative and gcd-reducible ones.
    #[test]
    fn max_reuse_equals_belady((program, _b, _c) in double_nest()) {
        let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
        if let Some(point) = max_reuse(&geom) {
            let trace = read_addresses(&program, "A");
            prop_assert_eq!(point.c_tot, trace.len() as u64);
            let sim = opt_simulate(&trace, point.size);
            prop_assert_eq!(point.fills, sim.fills,
                "fills mismatch for geometry {:?}", geom);
        }
    }

    /// The executable copy schedule realizes the closed forms: exact fill
    /// counts, occupancy within `A`, and byte-exact data.
    #[test]
    fn schedule_realizes_the_closed_forms((program, _b, _c) in double_nest()) {
        let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
        if let Some(point) = max_reuse(&geom) {
            let report = run_schedule(&program, 0, 0, 0, 1, CopyStrategy::MaxReuse).unwrap();
            prop_assert_eq!(report.value_errors, 0);
            prop_assert_eq!(report.fills, point.fills);
            prop_assert!(report.max_occupancy <= point.size,
                "occupancy {} > A {} for {:?}", report.max_occupancy, point.size, geom);
        }
    }

    /// Partial-reuse points: sizes and reuse factors increase with γ, the
    /// traffic accounting is conserved, and no point claims less upstream
    /// traffic than the Belady optimum of the same size.
    #[test]
    fn partial_points_are_consistent((program, _b, _c) in double_nest()) {
        let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
        let trace = read_addresses(&program, "A");
        for bypass in [false, true] {
            let points = partial_sweep(&geom, bypass);
            for w in points.windows(2) {
                prop_assert!(w[1].size >= w[0].size);
                prop_assert!(w[1].reuse_factor() >= w[0].reuse_factor() - 1e-12);
            }
            for p in &points {
                prop_assert!(p.fills + p.bypasses <= p.c_tot);
                // Bypass-capable Belady bounds every feasible scheme.
                let sim = opt_simulate_bypass(&trace, p.size);
                prop_assert!(sim.misses() <= p.fills + p.bypasses,
                    "overclaim at size {} ({:?})", p.size, p.kind);
            }
        }
    }

    /// The Fig. 8 modulo addressing never overwrites a live element on
    /// arbitrary canonical-orientation nests.
    #[test]
    fn fig8_addressing_is_collision_free_generally(
        jr in 2i64..=12, kr in 2i64..=10, b in 0i64..=4, c in 0i64..=4
    ) {
        let extent = b * (jr - 1) + c * (kr - 1) + 1;
        let src = format!(
            "array A[{extent}]; for j in 0..{jr} {{ for k in 0..{kr} {{ read A[{b}*j + {c}*k]; }} }}"
        );
        let program = parse_program(&src).unwrap();
        if let Ok(report) = verify_fig8_addressing(&program, 0, 0, 0, 1) {
            prop_assert_eq!(report.collisions, 0,
                "collisions for b={}, c={}, jr={}, kr={}", b, c, jr, kr);
        }
    }

    /// Downstream DTSE steps stay consistent on arbitrary nests: the
    /// in-place size never exceeds the analytical `A` or the enlarged
    /// single-assignment buffer, and SCBD spreading never increases the
    /// cycle requirement.
    #[test]
    fn downstream_steps_are_consistent((program, _b, _c) in double_nest()) {
        let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
        if let Some(point) = max_reuse(&geom) {
            let inplace = map_inplace(&program, 0, 0, 0, 1, CopyStrategy::MaxReuse).unwrap();
            prop_assert!(inplace.inplace_words <= inplace.analytical_words);
            prop_assert!(inplace.analytical_words <= inplace.single_assignment_words.max(point.size));
            prop_assert_eq!(inplace.analytical_words, point.size);
            let scbd = distribute_cycles(
                &program, 0, 0, 0, 1, CopyStrategy::MaxReuse, PortBudget::default(),
            )
            .unwrap();
            prop_assert!(scbd.cycles_required_spread <= scbd.cycles_required);
            prop_assert!(scbd.spread_fills_per_iteration <= scbd.peak_fills_per_outer_iteration.max(1));
        }
    }

    /// The partial schedule executes with the predicted traffic for every
    /// valid γ.
    #[test]
    fn partial_schedule_matches((program, _b, _c) in double_nest()) {
        let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
        for p in partial_sweep(&geom, true) {
            let datareuse::model::PointKind::PartialBypass { gamma } = p.kind else {
                continue;
            };
            let report =
                run_schedule(&program, 0, 0, 0, 1, CopyStrategy::PartialBypass { gamma }).unwrap();
            prop_assert_eq!(report.value_errors, 0);
            prop_assert_eq!(report.fills, p.fills, "γ={}", gamma);
            prop_assert_eq!(report.bypasses, p.bypasses, "γ={}", gamma);
            prop_assert!(report.max_occupancy <= p.size, "γ={}", gamma);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One-pass Mattson stack distances equal direct LRU simulation at
    /// every capacity, and Belady lower-bounds every policy.
    #[test]
    fn simulators_agree(addrs in prop::collection::vec(0u64..24, 1..300)) {
        let sd = StackDistances::compute(&addrs);
        for cap in [1u64, 2, 3, 5, 8, 13, 24] {
            let lru = lru_simulate(&addrs, cap);
            prop_assert_eq!(sd.misses_at(cap), lru.misses());
            let opt = opt_simulate(&addrs, cap);
            prop_assert!(opt.misses() <= lru.misses());
            prop_assert!(opt.misses() <= fifo_simulate(&addrs, cap).misses());
            // Bypass can only help.
            let byp = opt_simulate_bypass(&addrs, cap);
            prop_assert!(byp.hits >= opt.hits);
            prop_assert!(byp.fills <= opt.fills);
        }
    }

    /// Belady miss counts are monotone in capacity (no Belady anomaly).
    #[test]
    fn opt_has_no_anomaly(addrs in prop::collection::vec(0u64..16, 1..200)) {
        let mut prev = u64::MAX;
        for cap in 1..=16u64 {
            let m = opt_simulate(&addrs, cap).misses();
            prop_assert!(m <= prev);
            prev = m;
        }
    }

    /// Pareto fronts contain no dominated points and keep every
    /// non-dominated input.
    #[test]
    fn pareto_front_is_exactly_the_non_dominated_set(
        pts in prop::collection::vec((0u32..50, 0u32..50), 1..60)
    ) {
        let points: Vec<ParetoPoint<usize>> = pts
            .iter()
            .enumerate()
            .map(|(i, &(s, p))| ParetoPoint::new(s as f64, p as f64, i))
            .collect();
        let front = pareto_front(points.clone());
        for f in &front {
            prop_assert!(!points.iter().any(|q| q.dominates(f)));
        }
        for q in &points {
            if !points.iter().any(|r| r.dominates(q)) {
                // q is non-dominated: some front point matches its coords.
                prop_assert!(front
                    .iter()
                    .any(|f| f.size == q.size && f.power == q.power));
            }
        }
    }

    /// DSL roundtrip: Display output of a random strided window program
    /// reparses to the identical IR.
    #[test]
    fn dsl_roundtrip(jr in 2i64..9, kr in 2i64..9, step in 1i64..4, b in 0i64..4, c in 1i64..4) {
        let extent = b * (jr - 1) * step + c * (kr - 1) + 1;
        let src = format!(
            "array A[{extent}] bits 16;
             for j in 0..{top} step {step} {{ for k in 0..{kr} {{ read A[{b}*j + {c}*k]; }} }}",
            top = (jr - 1) * step + 1
        );
        let program = parse_program(&src).unwrap();
        let reparsed = parse_program(&program.to_string()).unwrap();
        prop_assert_eq!(program, reparsed);
    }
}
