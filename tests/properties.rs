//! Property-based tests over the core invariants, driven by the in-repo
//! deterministic harness (`datareuse-proptest`).
//!
//! The central property is the paper's own validation, mechanized: for
//! *arbitrary* affine double nests, the analytical maximum-reuse point
//! must coincide with Belady-optimal simulation, and the generated copy
//! schedule must realize it exactly.
//!
//! Every property body is a plain function over the generated tuple, so
//! recorded counterexamples become named `#[test]`s that pin the exact
//! case forever (see the `regression_*` tests at the bottom — both were
//! shrunk failures recorded by the previous proptest setup).

use datareuse_proptest::{check, prop_assert, prop_assert_eq, Config, Rng};

use datareuse::codegen::{run_schedule, verify_fig8_addressing, Strategy as CopyStrategy};
use datareuse::model::{max_reuse, partial_sweep, PairGeometry};
use datareuse::prelude::*;
use datareuse::steps::{distribute_cycles, map_inplace, PortBudget};

/// A random double nest `for j in 0..jr { for k in 0..kr { read A[b*j + c*k + off] } }`
/// with the offset chosen so indices stay in bounds.
fn gen_double_nest(rng: &mut Rng) -> (i64, i64, i64, i64) {
    (
        rng.i64_in(2, 12),
        rng.i64_in(2, 10),
        rng.i64_in(-4, 4),
        rng.i64_in(-4, 4),
    )
}

/// Builds the program for a `(jr, kr, b, c)` tuple, or `None` when the
/// tuple is outside the generator's domain (shrunk candidates may be).
fn double_nest_program((jr, kr, b, c): (i64, i64, i64, i64)) -> Option<Program> {
    if jr < 2 || kr < 2 {
        return None;
    }
    let min = [b * (jr - 1), 0].into_iter().min().unwrap()
        + [c * (kr - 1), 0].into_iter().min().unwrap();
    let max = [b * (jr - 1), 0].into_iter().max().unwrap()
        + [c * (kr - 1), 0].into_iter().max().unwrap();
    let off = -min;
    let extent = max - min + 1;
    let src = format!(
        "array A[{extent}]; for j in 0..{jr} {{ for k in 0..{kr} {{ read A[{b}*j + {c}*k + {off}]; }} }}"
    );
    Some(parse_program(&src).expect("generated program parses"))
}

/// Analytical `A_Max`/fills coincide with the Belady optimum for
/// arbitrary coefficients, including negative and gcd-reducible ones.
fn prop_max_reuse_equals_belady(case: &(i64, i64, i64, i64)) -> Result<(), String> {
    let Some(program) = double_nest_program(*case) else {
        return Ok(());
    };
    let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
    if let Some(point) = max_reuse(&geom) {
        let trace = read_addresses(&program, "A");
        prop_assert_eq!(point.c_tot, trace.len() as u64);
        let sim = opt_simulate(&trace, point.size);
        prop_assert_eq!(point.fills, sim.fills, "fills mismatch for geometry {:?}", geom);
    }
    Ok(())
}

/// The executable copy schedule realizes the closed forms: exact fill
/// counts, occupancy within `A`, and byte-exact data.
fn prop_schedule_realizes_the_closed_forms(case: &(i64, i64, i64, i64)) -> Result<(), String> {
    let Some(program) = double_nest_program(*case) else {
        return Ok(());
    };
    let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
    if let Some(point) = max_reuse(&geom) {
        let report = run_schedule(&program, 0, 0, 0, 1, CopyStrategy::MaxReuse).unwrap();
        prop_assert_eq!(report.value_errors, 0);
        prop_assert_eq!(report.fills, point.fills);
        prop_assert!(
            report.max_occupancy <= point.size,
            "occupancy {} > A {} for {:?}",
            report.max_occupancy,
            point.size,
            geom
        );
    }
    Ok(())
}

/// Partial-reuse points: sizes and reuse factors increase with γ, the
/// traffic accounting is conserved, and no point claims less upstream
/// traffic than the Belady optimum of the same size.
fn prop_partial_points_are_consistent(case: &(i64, i64, i64, i64)) -> Result<(), String> {
    let Some(program) = double_nest_program(*case) else {
        return Ok(());
    };
    let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
    let trace = read_addresses(&program, "A");
    for bypass in [false, true] {
        let points = partial_sweep(&geom, bypass);
        for w in points.windows(2) {
            prop_assert!(w[1].size >= w[0].size);
            prop_assert!(w[1].reuse_factor() >= w[0].reuse_factor() - 1e-12);
        }
        for p in &points {
            prop_assert!(p.fills + p.bypasses <= p.c_tot);
            // Bypass-capable Belady bounds every feasible scheme.
            let sim = opt_simulate_bypass(&trace, p.size);
            prop_assert!(
                sim.misses() <= p.fills + p.bypasses,
                "overclaim at size {} ({:?})",
                p.size,
                p.kind
            );
        }
    }
    Ok(())
}

/// The Fig. 8 modulo addressing never overwrites a live element on
/// arbitrary canonical-orientation nests.
fn prop_fig8_addressing_is_collision_free(case: &(i64, i64, i64, i64)) -> Result<(), String> {
    let &(jr, kr, b, c) = case;
    if jr < 2 || kr < 2 || b < 0 || c < 0 {
        return Ok(());
    }
    let extent = b * (jr - 1) + c * (kr - 1) + 1;
    let src = format!(
        "array A[{extent}]; for j in 0..{jr} {{ for k in 0..{kr} {{ read A[{b}*j + {c}*k]; }} }}"
    );
    let program = parse_program(&src).unwrap();
    if let Ok(report) = verify_fig8_addressing(&program, 0, 0, 0, 1) {
        prop_assert_eq!(
            report.collisions,
            0,
            "collisions for b={}, c={}, jr={}, kr={}",
            b,
            c,
            jr,
            kr
        );
    }
    Ok(())
}

/// Downstream DTSE steps stay consistent on arbitrary nests: the
/// in-place size never exceeds the analytical `A` or the enlarged
/// single-assignment buffer, and SCBD spreading never increases the
/// cycle requirement.
fn prop_downstream_steps_are_consistent(case: &(i64, i64, i64, i64)) -> Result<(), String> {
    let Some(program) = double_nest_program(*case) else {
        return Ok(());
    };
    let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
    if let Some(point) = max_reuse(&geom) {
        let inplace = map_inplace(&program, 0, 0, 0, 1, CopyStrategy::MaxReuse).unwrap();
        prop_assert!(inplace.inplace_words <= inplace.analytical_words);
        prop_assert!(
            inplace.analytical_words <= inplace.single_assignment_words.max(point.size)
        );
        prop_assert_eq!(inplace.analytical_words, point.size);
        let scbd = distribute_cycles(
            &program,
            0,
            0,
            0,
            1,
            CopyStrategy::MaxReuse,
            PortBudget::default(),
        )
        .unwrap();
        prop_assert!(scbd.cycles_required_spread <= scbd.cycles_required);
        prop_assert!(
            scbd.spread_fills_per_iteration <= scbd.peak_fills_per_outer_iteration.max(1)
        );
    }
    Ok(())
}

/// The partial schedule executes with the predicted traffic for every
/// valid γ.
fn prop_partial_schedule_matches(case: &(i64, i64, i64, i64)) -> Result<(), String> {
    let Some(program) = double_nest_program(*case) else {
        return Ok(());
    };
    let geom = PairGeometry::from_access(&program.nests()[0], 0, 0, 1).unwrap();
    for p in partial_sweep(&geom, true) {
        let datareuse::model::PointKind::PartialBypass { gamma } = p.kind else {
            continue;
        };
        let report =
            run_schedule(&program, 0, 0, 0, 1, CopyStrategy::PartialBypass { gamma }).unwrap();
        prop_assert_eq!(report.value_errors, 0);
        prop_assert_eq!(report.fills, p.fills, "γ={}", gamma);
        prop_assert_eq!(report.bypasses, p.bypasses, "γ={}", gamma);
        prop_assert!(report.max_occupancy <= p.size, "γ={}", gamma);
    }
    Ok(())
}

/// The acceptance bar for the reproduction: the Belady-vs-analytical
/// property runs on at least 256 generated double nests, deterministically.
#[test]
fn max_reuse_equals_belady() {
    check(
        "max_reuse_equals_belady",
        &Config::with_cases(256),
        gen_double_nest,
        prop_max_reuse_equals_belady,
    );
}

#[test]
fn schedule_realizes_the_closed_forms() {
    check(
        "schedule_realizes_the_closed_forms",
        &Config::with_cases(96),
        gen_double_nest,
        prop_schedule_realizes_the_closed_forms,
    );
}

#[test]
fn partial_points_are_consistent() {
    check(
        "partial_points_are_consistent",
        &Config::with_cases(96),
        gen_double_nest,
        prop_partial_points_are_consistent,
    );
}

#[test]
fn fig8_addressing_is_collision_free_generally() {
    check(
        "fig8_addressing_is_collision_free_generally",
        &Config::with_cases(96),
        |rng| {
            (
                rng.i64_in(2, 12),
                rng.i64_in(2, 10),
                rng.i64_in(0, 4),
                rng.i64_in(0, 4),
            )
        },
        prop_fig8_addressing_is_collision_free,
    );
}

#[test]
fn downstream_steps_are_consistent() {
    check(
        "downstream_steps_are_consistent",
        &Config::with_cases(96),
        gen_double_nest,
        prop_downstream_steps_are_consistent,
    );
}

#[test]
fn partial_schedule_matches() {
    check(
        "partial_schedule_matches",
        &Config::with_cases(96),
        gen_double_nest,
        prop_partial_schedule_matches,
    );
}

/// One-pass Mattson stack distances equal direct LRU simulation at
/// every capacity, and Belady lower-bounds every policy.
#[test]
fn simulators_agree() {
    check(
        "simulators_agree",
        &Config::with_cases(64),
        |rng| rng.vec(1, 300, |r| r.u64_in(0, 23)),
        |addrs: &Vec<u64>| {
            if addrs.is_empty() {
                return Ok(());
            }
            let sd = StackDistances::compute(addrs);
            for cap in [1u64, 2, 3, 5, 8, 13, 24] {
                let lru = lru_simulate(addrs, cap);
                prop_assert_eq!(sd.misses_at(cap), lru.misses());
                let opt = opt_simulate(addrs, cap);
                prop_assert!(opt.misses() <= lru.misses());
                prop_assert!(opt.misses() <= fifo_simulate(addrs, cap).misses());
                // Bypass can only help.
                let byp = opt_simulate_bypass(addrs, cap);
                prop_assert!(byp.hits >= opt.hits);
                prop_assert!(byp.fills <= opt.fills);
            }
            Ok(())
        },
    );
}

/// Belady miss counts are monotone in capacity (no Belady anomaly).
#[test]
fn opt_has_no_anomaly() {
    check(
        "opt_has_no_anomaly",
        &Config::with_cases(64),
        |rng| rng.vec(1, 200, |r| r.u64_in(0, 15)),
        |addrs: &Vec<u64>| {
            if addrs.is_empty() {
                return Ok(());
            }
            let mut prev = u64::MAX;
            for cap in 1..=16u64 {
                let m = opt_simulate(addrs, cap).misses();
                prop_assert!(m <= prev);
                prev = m;
            }
            Ok(())
        },
    );
}

/// Pareto fronts contain no dominated points and keep every
/// non-dominated input.
#[test]
fn pareto_front_is_exactly_the_non_dominated_set() {
    check(
        "pareto_front_is_exactly_the_non_dominated_set",
        &Config::with_cases(64),
        |rng| rng.vec(1, 60, |r| (r.u32_in(0, 49), r.u32_in(0, 49))),
        |pts: &Vec<(u32, u32)>| {
            if pts.is_empty() {
                return Ok(());
            }
            let points: Vec<ParetoPoint<usize>> = pts
                .iter()
                .enumerate()
                .map(|(i, &(s, p))| ParetoPoint::new(s as f64, p as f64, i))
                .collect();
            let front = pareto_front(points.clone());
            for f in &front {
                prop_assert!(!points.iter().any(|q| q.dominates(f)));
            }
            for q in &points {
                if !points.iter().any(|r| r.dominates(q)) {
                    // q is non-dominated: some front point matches its coords.
                    prop_assert!(front.iter().any(|f| f.size == q.size && f.power == q.power));
                }
            }
            Ok(())
        },
    );
}

/// DSL roundtrip: Display output of a random strided window program
/// reparses to the identical IR.
#[test]
fn dsl_roundtrip() {
    check(
        "dsl_roundtrip",
        &Config::with_cases(64),
        |rng| {
            (
                rng.i64_in(2, 8),
                rng.i64_in(2, 8),
                rng.i64_in(1, 3),
                rng.i64_in(0, 3),
                rng.i64_in(1, 3),
            )
        },
        |&(jr, kr, step, b, c)| {
            if jr < 2 || kr < 2 || step < 1 || b < 0 || c < 1 {
                return Ok(());
            }
            let extent = b * (jr - 1) * step + c * (kr - 1) + 1;
            let src = format!(
                "array A[{extent}] bits 16;
                 for j in 0..{top} step {step} {{ for k in 0..{kr} {{ read A[{b}*j + {c}*k]; }} }}",
                top = (jr - 1) * step + 1
            );
            let program = parse_program(&src).unwrap();
            let reparsed = parse_program(&program.to_string()).unwrap();
            prop_assert_eq!(&program, &reparsed);
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Named regressions: counterexamples recorded (and shrunk) by the former
// proptest setup in `tests/properties.proptest-regressions`. Kept as
// explicit cases so they run on every `cargo test` forever.
// ---------------------------------------------------------------------

/// Former seed `3fba0fcc…`: the degenerate `jr=2, kr=2, b=1, c=0` nest —
/// the smallest geometry where reuse is carried purely by the inner loop
/// (`c' = 0`, `A_Max = 1`) and every iteration beyond the first `j` sweep
/// is a hit.
#[test]
fn regression_degenerate_nest_c_zero() {
    let case = (2, 2, 1, 0);
    prop_max_reuse_equals_belady(&case).unwrap();
    prop_schedule_realizes_the_closed_forms(&case).unwrap();
    prop_partial_points_are_consistent(&case).unwrap();
    prop_downstream_steps_are_consistent(&case).unwrap();
    prop_partial_schedule_matches(&case).unwrap();
}

/// Former seed `d306cf77…`: the negative-coefficient single-extent case
/// `A[-1*j + 1]` over a 2×2 space (`jr=2, kr=2, b=-1, c=0`) — the
/// anti-diagonal normalization must not claim reuse the schedule cannot
/// realize on an array of extent 2.
#[test]
fn regression_negative_coefficient_single_extent() {
    let case = (2, 2, -1, 0);
    // The recorded program, byte for byte.
    let program = double_nest_program(case).unwrap();
    assert_eq!(
        program.nests()[0].accesses()[0].indices()[0].to_string(),
        "-j + 1"
    );
    prop_max_reuse_equals_belady(&case).unwrap();
    prop_schedule_realizes_the_closed_forms(&case).unwrap();
    prop_partial_points_are_consistent(&case).unwrap();
    prop_downstream_steps_are_consistent(&case).unwrap();
    prop_partial_schedule_matches(&case).unwrap();
}
