//! Property tests for the einsum expression front end: expression-derived
//! programs must be indistinguishable from the hand-built kernels they
//! describe, all the way down to the byte-identical symbolic profile,
//! and the generated corpus must be a pure function of its seed.

use datareuse::exprlang::parse_expression;
use datareuse::kernels::{generate_corpus, Fir, MatMul, DEFAULT_CORPUS_SEED};
use datareuse::model::SymbolicProfile;

#[test]
fn einsum_matmul_reproduces_the_builtin_program_exactly() {
    let expr = parse_expression("C[i,j] += A[i,k] * B[k,j] ~ i j k").expect("parses");
    // Whole-program equality: same arrays (names, extents, bit widths,
    // declaration order), same loops, same access streams.
    assert_eq!(expr, MatMul::square(32).program());
}

#[test]
fn einsum_fir_reproduces_the_builtin_nest_and_symbolic_profile() {
    let builtin = Fir::AUDIO.program();
    let expr = parse_expression("y[n] += x[n - t + 63] * h[t] where n=1024, t=64")
        .expect("parses");
    let (b, e) = (&builtin.nests()[0], &expr.nests()[0]);
    // The builtin fir is read-only (no output store), so the einsum form
    // adds one write access on top of an otherwise identical nest.
    assert_eq!(b.loops(), e.loops());
    assert_eq!(b.accesses(), &e.accesses()[..2]);
    assert_eq!(
        builtin.array("x").unwrap().extents(),
        expr.array("x").unwrap().extents()
    );
    // The symbolic engine sees the same access group, so the closed-form
    // reuse profile of the sample stream must be byte-identical.
    let profile_builtin = SymbolicProfile::analyze(b, &[0]).expect("symbolic path");
    let profile_expr = SymbolicProfile::analyze(e, &[0]).expect("symbolic path");
    assert_eq!(profile_builtin, profile_expr);
    assert_eq!(
        format!("{profile_builtin:?}"),
        format!("{profile_expr:?}"),
        "profiles must agree byte for byte"
    );
}

#[test]
fn corpus_generation_is_a_pure_function_of_the_seed() {
    for seed in [DEFAULT_CORPUS_SEED, 0, 1, 0xDEAD_BEEF] {
        assert_eq!(generate_corpus(seed), generate_corpus(seed), "seed {seed:#x}");
    }
    assert_ne!(generate_corpus(1), generate_corpus(2));
    // Every generated expression lowers, regardless of seed.
    for entry in generate_corpus(0xDEAD_BEEF) {
        parse_expression(&entry.expr)
            .unwrap_or_else(|e| panic!("{}: {e}\n{}", entry.name, entry.expr));
    }
}

#[test]
fn shifted_index_extent_inference_matches_the_paper_kernels() {
    // FIR window: x must reach n − t + (T−1) = outputs + taps − 1 elements.
    let p = parse_expression("y[n] += x[n - t + 7] * h[t] where n=64, t=8").unwrap();
    assert_eq!(p.array("x").unwrap().extents(), &[71]);
    // Conv2d halo: image extends taps − 1 beyond the output in each dim.
    let p = parse_expression(
        "out[y,x] += image[y+i, x+j] * coef[i,j] where y=32, x=32, i=3, j=3",
    )
    .unwrap();
    assert_eq!(p.array("image").unwrap().extents(), &[34, 34]);
}
