//! Cross-validation of the symbolic reuse-profile engine against the
//! enumeration analysis and the trace simulators, on randomly generated
//! affine nests of arbitrary depth.
//!
//! The contract under test: wherever [`symbolic_profile`] accepts a nest,
//! its closed forms must agree *exactly* with the `footprint_levels`
//! enumeration (same candidates, byte for byte) and with trace-derived
//! ground truth (`C_tot` = trace length, footprint = distinct addresses,
//! per-depth sizes = distinct addresses of the inner sub-nest), and every
//! point of its miss curve must be feasible for Belady-optimal
//! replacement. Any disagreement is either a symbolic bug or a simulator
//! bug — both get fixed and pinned as a named `regression_*` test below.

use datareuse_proptest::{check, prop_assert, prop_assert_eq, Config, Rng};

use datareuse::model::{
    footprint_levels, symbolic_profile, LevelCandidate, SymbolicFallback,
};
use datareuse::prelude::*;
use datareuse::trace::{distinct_count, opt_simulate, SimResult};

/// One generated loop: `(trip_count, coeff_dim0, coeff_dim1)`. A nest is
/// 1–4 of these; the access is 1-D when every `coeff_dim1` is zero.
type Case = Vec<(i64, i64, i64)>;

fn gen_nest(rng: &mut Rng) -> Case {
    rng.vec(1, 4, |r| {
        (r.i64_in(2, 6), r.i64_in(-3, 3), r.i64_in(-3, 3))
    })
}

const NAMES: [&str; 4] = ["i0", "i1", "i2", "i3"];

/// The DSL index expression of dimension `d` over `loops`, with `off`
/// added to keep every address in bounds (zero-coefficient terms emitted
/// too, matching the `tests/properties.rs` generator idiom).
fn index_expr(loops: &[(i64, i64, i64)], skip: usize, d: usize, off: i64) -> String {
    let mut terms: Vec<String> = loops
        .iter()
        .enumerate()
        .map(|(i, &(_, b, c))| format!("{}*{}", if d == 0 { b } else { c }, NAMES[skip + i]))
        .collect();
    terms.push(off.to_string());
    terms.join(" + ")
}

/// Per-dimension `(offset, extent)` so indices stay in `[0, extent)`.
fn dim_bounds(loops: &[(i64, i64, i64)], d: usize) -> (i64, i64) {
    let (mut lo, mut hi) = (0i64, 0i64);
    for &(t, b, c) in loops {
        let coeff = if d == 0 { b } else { c };
        if coeff < 0 {
            lo += coeff * (t - 1);
        } else {
            hi += coeff * (t - 1);
        }
    }
    (-lo, hi - lo + 1)
}

/// Builds the program for a case, or `None` when the case is outside the
/// generator's domain (shrunk candidates may be).
fn nest_program(case: &Case) -> Option<Program> {
    nest_program_from(case, case.as_slice(), "")
}

/// Builds a program iterating `loops` but indexing with the bounds of
/// `full` — used to materialize the inner sub-nest of a depth while
/// keeping the same array geometry. `guard` is a DSL guard suffix for
/// the read (e.g. `" if i0 != 1"`), empty for none.
fn nest_program_from(full: &Case, loops: &[(i64, i64, i64)], guard: &str) -> Option<Program> {
    if full.is_empty() || full.len() > 4 {
        return None;
    }
    if full
        .iter()
        .any(|&(t, b, c)| !(2..=6).contains(&t) || b.abs() > 3 || c.abs() > 3)
    {
        return None;
    }
    let two_d = full.iter().any(|&(_, _, c)| c != 0);
    let (off0, ext0) = dim_bounds(full, 0);
    let mut src = if two_d {
        let (_, ext1) = dim_bounds(full, 1);
        format!("array A[{ext0}][{ext1}];\n")
    } else {
        format!("array A[{ext0}];\n")
    };
    let skip = full.len() - loops.len();
    for (i, &(t, _, _)) in loops.iter().enumerate() {
        src += &format!("for {} in 0..{t} {{ ", NAMES[skip + i]);
    }
    if two_d {
        let (off1, _) = dim_bounds(full, 1);
        src += &format!(
            "read A[{}][{}]{guard};",
            index_expr(loops, skip, 0, off0),
            index_expr(loops, skip, 1, off1)
        );
    } else {
        src += &format!("read A[{}]{guard};", index_expr(loops, skip, 0, off0));
    }
    src += &" }".repeat(loops.len());
    Some(parse_program(&src).expect("generated program parses"))
}

/// Wherever the symbolic engine accepts a nest, its candidates are byte
/// for byte the enumeration's, and its headline numbers match the trace.
fn prop_symbolic_matches_enumeration(case: &Case) -> Result<(), String> {
    let Some(program) = nest_program(case) else {
        return Ok(());
    };
    let nest = &program.nests()[0];
    let levels: Vec<LevelCandidate> =
        footprint_levels(nest, 0).map_err(|e| format!("enumeration failed: {e:?}"))?;
    match symbolic_profile(nest, 0) {
        Ok(profile) => {
            prop_assert_eq!(
                profile.level_candidates(),
                levels,
                "candidate mismatch for {:?}",
                case
            );
            let trace = read_addresses(&program, "A");
            prop_assert_eq!(profile.c_tot(), trace.len() as u64);
            prop_assert_eq!(profile.total_footprint(), distinct_count(&trace));
            for l in profile.levels() {
                prop_assert!(l.fills <= profile.c_tot(), "fills > C_tot at {:?}", l);
                prop_assert!(
                    l.fills >= profile.total_footprint(),
                    "fills below compulsory at {:?}",
                    l
                );
            }
        }
        Err(fallback) => {
            // A refusal is fine (that's what the fallback is for), but it
            // must be one the dispatch can act on, and the enumeration
            // path must have covered the nest (asserted above).
            prop_assert!(
                !matches!(fallback, SymbolicFallback::BadAccess),
                "access 0 exists, BadAccess is wrong"
            );
        }
    }
    Ok(())
}

/// Per-depth sizes are the distinct-address counts of the materialized
/// inner sub-nests — trace-level ground truth independent of both the
/// symbolic closed forms and the enumeration.
fn prop_depth_sizes_match_subnest_traces(case: &Case) -> Result<(), String> {
    let Some(program) = nest_program(case) else {
        return Ok(());
    };
    let Ok(profile) = symbolic_profile(&program.nests()[0], 0) else {
        return Ok(());
    };
    for level in profile.levels() {
        if level.depth == case.len() {
            // Empty inner sub-nest: the footprint is the single element
            // the (now constant) index denotes.
            prop_assert_eq!(level.size, 1, "deepest level of {:?}", case);
            continue;
        }
        let sub = nest_program_from(case, &case[level.depth..], "")
            .expect("sub-nest of a valid case is valid");
        let sub_trace = read_addresses(&sub, "A");
        prop_assert_eq!(
            level.size,
            distinct_count(&sub_trace),
            "depth {} footprint mismatch for {:?}",
            level.depth,
            case
        );
    }
    Ok(())
}

/// Every miss-curve point is Belady-feasible and the reuse histogram
/// conserves `C_tot`.
fn prop_miss_curve_is_belady_feasible(case: &Case) -> Result<(), String> {
    let Some(program) = nest_program(case) else {
        return Ok(());
    };
    let Ok(profile) = symbolic_profile(&program.nests()[0], 0) else {
        return Ok(());
    };
    let curve = profile.miss_curve();
    for w in curve.windows(2) {
        prop_assert!(
            w[0].0 < w[1].0 && w[0].1 > w[1].1,
            "curve not a strict staircase: {:?}",
            curve
        );
    }
    let trace = read_addresses(&program, "A");
    for &(cap, fills) in &curve {
        prop_assert!(fills >= profile.total_footprint());
        let opt = opt_simulate(&trace, cap);
        prop_assert!(
            opt.fills <= fills,
            "OPT {} beats symbolic {} at capacity {} for {:?}",
            opt.fills,
            fills,
            cap,
            case
        );
    }
    let hist = profile.reuse_histogram();
    prop_assert_eq!(hist.total(), profile.c_tot(), "leaky histogram for {:?}", case);
    prop_assert_eq!(hist.compulsory, profile.total_footprint());
    Ok(())
}

/// Adding a guard always demotes a nest to the fallback path, whatever
/// its shape — the dispatch boundary cannot silently widen.
fn prop_guarded_nests_always_fall_back(case: &Case) -> Result<(), String> {
    let Some(program) = nest_program(case) else {
        return Ok(());
    };
    drop(program);
    let guarded = nest_program_from(case, case, " if i0 != 1").expect("in-domain case");
    prop_assert_eq!(
        symbolic_profile(&guarded.nests()[0], 0),
        Err(SymbolicFallback::Guarded)
    );
    Ok(())
}

/// The acceptance bar: symbolic == simulated on at least 256 generated
/// affine nests, deterministically.
#[test]
fn symbolic_matches_enumeration_on_random_nests() {
    check(
        "symbolic_matches_enumeration_on_random_nests",
        &Config::with_cases(256),
        gen_nest,
        prop_symbolic_matches_enumeration,
    );
}

#[test]
fn depth_sizes_match_subnest_traces() {
    check(
        "depth_sizes_match_subnest_traces",
        &Config::with_cases(128),
        gen_nest,
        prop_depth_sizes_match_subnest_traces,
    );
}

#[test]
fn miss_curves_are_belady_feasible() {
    check(
        "miss_curves_are_belady_feasible",
        &Config::with_cases(128),
        gen_nest,
        prop_miss_curve_is_belady_feasible,
    );
}

#[test]
fn guarded_nests_always_fall_back() {
    check(
        "guarded_nests_always_fall_back",
        &Config::with_cases(64),
        gen_nest,
        prop_guarded_nests_always_fall_back,
    );
}

// ---------------------------------------------------------------------
// Named regressions: edge cases the harness (and its development) pinned.
// ---------------------------------------------------------------------

/// Zero-trip loops are unconstructible by design: `lower > upper` and
/// `step < 1` are rejected at the IR boundary, so no analysis or
/// simulator ever sees an empty iteration range — the "zero-trip"
/// disagreement class is closed at the type level.
#[test]
fn regression_zero_trip_loops_are_unconstructible() {
    assert!(matches!(
        Loop::try_new("i", 5, 4),
        Err(datareuse::loopir::BuildNestError::EmptyLoop { .. })
    ));
    assert!(matches!(
        Loop::try_with_step("i", 0, 4, 0),
        Err(datareuse::loopir::BuildNestError::BadStep { .. })
    ));
}

/// The zero-fill `F_R` edge: a candidate that never fills reports
/// `F_R = C_tot` (the paper's `b=c=0` footnote), and an empty trace's
/// [`SimResult`] reports the copied count (zero) rather than dividing by
/// zero — both sides of the symbolic-vs-simulated comparison agree on
/// the convention.
#[test]
fn regression_zero_fill_reuse_factor_is_c_tot() {
    let candidate = LevelCandidate {
        depth: 1,
        size: 4,
        fills: 0,
        c_tot: 128,
        exact: true,
    };
    assert_eq!(candidate.reuse_factor(), 128.0);
    let empty: SimResult = opt_simulate(&[], 4);
    assert_eq!(empty.fills, 0);
    assert_eq!(empty.reuse_factor(), 0.0);
}

/// Boundary iterations: single-step carriers (`trip = 2`) with negative
/// coefficients — the smallest geometries where consecutive-footprint
/// overlap, normalization, and Belady agree only if every off-by-one is
/// absent. All four properties must hold.
#[test]
fn regression_boundary_single_step_carriers() {
    for case in [
        vec![(2, 1, 0), (2, 1, 0)],
        vec![(2, -1, 0), (2, 1, 0)],
        vec![(2, -3, 0), (2, -1, 0), (2, 1, 0)],
        vec![(2, 1, -1), (2, 0, 1)],
    ] {
        prop_symbolic_matches_enumeration(&case).unwrap();
        prop_depth_sizes_match_subnest_traces(&case).unwrap();
        prop_miss_curve_is_belady_feasible(&case).unwrap();
        prop_guarded_nests_always_fall_back(&case).unwrap();
    }
}

/// The all-zero-coefficient access (`A[off]` touched every iteration):
/// footprint 1 at every depth, fills 1 at depth 1, and `C_tot` hits —
/// the degenerate case where `fills == footprint == 1`.
#[test]
fn regression_constant_index_is_a_single_hot_element() {
    let case = vec![(3, 0, 0), (4, 0, 0)];
    let program = nest_program(&case).unwrap();
    let profile = symbolic_profile(&program.nests()[0], 0).unwrap();
    assert_eq!(profile.total_footprint(), 1);
    assert_eq!(profile.c_tot(), 12);
    let levels = profile.level_candidates();
    assert_eq!((levels[0].size, levels[0].fills), (1, 1));
    prop_symbolic_matches_enumeration(&case).unwrap();
    prop_miss_curve_is_belady_feasible(&case).unwrap();
}
