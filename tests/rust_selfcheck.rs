//! End-to-end machine validation of the Rust emitter: emit the original
//! program and the self-checking band-copy program for corpus kernels,
//! compile them with `rustc`, run the binaries, and require the `OK`
//! verdict — the transformed access stream must reproduce the original
//! checksum exactly.
//!
//! Skipped silently when no `rustc` is on PATH (the workspace itself is
//! built by cargo, which does not guarantee a driver binary).

use std::process::Command;

use datareuse::codegen::{emit_rust_program, emit_rust_selfcheck_band};
use datareuse::kernels::load_kernel;

fn have_rustc() -> bool {
    Command::new("rustc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn compile_and_run(source: &str, tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("datareuse_rustgen_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let rs_path = dir.join("check.rs");
    let bin_path = dir.join("check");
    std::fs::write(&rs_path, source).expect("write Rust source");
    let compile = Command::new("rustc")
        .arg("-O")
        .arg("--edition")
        .arg("2021")
        .arg("-o")
        .arg(&bin_path)
        .arg(&rs_path)
        .output()
        .expect("invoke rustc");
    assert!(
        compile.status.success(),
        "rustc failed for {tag}:\n{}\n--- source ---\n{source}",
        String::from_utf8_lossy(&compile.stderr)
    );
    let run = Command::new(&bin_path).output().expect("run self-check");
    assert!(
        run.status.success(),
        "self-check failed for {tag}: {}",
        String::from_utf8_lossy(&run.stdout)
    );
    let stdout = String::from_utf8_lossy(&run.stdout).into_owned();
    assert!(stdout.starts_with("OK"), "{tag}: unexpected output: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
    stdout
}

/// The flagship corpus kernels the acceptance gate names: matmul,
/// conv2d, and one stencil. For each, both the runnable original and
/// the band-copy self-check must compile, run, and agree.
const FLAGSHIPS: &[&str] = &[
    "gen-matmul-32x32x32",
    "gen-conv2d-32x32x3",
    "gen-stencil2d-32x32",
];

#[test]
fn generated_rust_originals_compile_and_run() {
    if !have_rustc() {
        eprintln!("skipping: no rustc");
        return;
    }
    for name in FLAGSHIPS {
        let program = load_kernel(name).expect("corpus kernel loads");
        let rs = emit_rust_program(&program);
        compile_and_run(&rs, &format!("orig_{}", name.replace('-', "_")));
    }
}

#[test]
fn generated_rust_band_selfchecks_pass_for_corpus_kernels() {
    if !have_rustc() {
        eprintln!("skipping: no rustc");
        return;
    }
    for name in FLAGSHIPS {
        let program = load_kernel(name).expect("corpus kernel loads");
        // Access 0 is the sliding-window input of all three flagships;
        // depth 1 puts the band under the outermost carrier loop.
        let rs = emit_rust_selfcheck_band(&program, 0, 0, 1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let verdict = compile_and_run(&rs, &format!("band_{}", name.replace('-', "_")));
        assert!(verdict.starts_with("OK "), "{name}: {verdict}");
    }
}

#[test]
fn band_selfchecks_cover_every_supported_depth_of_the_builtin_window() {
    if !have_rustc() {
        eprintln!("skipping: no rustc");
        return;
    }
    // The motion-estimation reference frame: the paper's Fig. 4a bands.
    let program = load_kernel("me-small").expect("builtin loads");
    for depth in [1usize, 2] {
        let rs = emit_rust_selfcheck_band(&program, 0, 1, depth)
            .unwrap_or_else(|e| panic!("depth {depth}: {e}"));
        compile_and_run(&rs, &format!("me_depth{depth}"));
    }
}
